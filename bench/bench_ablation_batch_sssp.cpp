// Ablation of batched delta-stepping on the lane-valued frontier substrate:
// batch width x delta x exchange topology on an RMAT graph, every lane
// validated bit for bit against baseline::serial_delta_sssp.  The headline
// number is the *modeled batch speedup*: the summed modeled time of W
// independent single-source delta-stepping runs divided by the one batched
// run serving the same W sources -- the per-vertex (not per-slot) edge
// sweeps, shared union bucket collectives and packed lane-word wire are
// what the paper's substrate buys for multi-source serving.
//
// Two composition rows ride along: a betweenness-centrality mini-run
// (forward + reverse engine runs stitched with sim::compose_breakdowns,
// scores checked against baseline::serial_brandes) and a PageRank wire
// comparison of raw vs adaptive varint vs adaptive Gorilla float
// compression.
//
// Exit status is non-zero when any lane diverges from its serial oracle,
// when the W = 1 / value_bits = 64 batch fails to reproduce the
// single-source engine's schedule and wire bytes, when the W = 64 batch's
// modeled speedup is not above 8x, when the BC scores diverge or its
// composed model loses rows, or when adaptive Gorilla ships more PageRank
// bytes than raw -- CI runs this on a small graph as a smoke test
// (BENCH_PR10.json).
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "baseline/brandes.hpp"
#include "baseline/host_apps.hpp"
#include "bench_common.hpp"
#include "core/batch_sssp.hpp"
#include "core/betweenness.hpp"
#include "core/delta_sssp.hpp"
#include "core/pagerank.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "util/cli.hpp"

namespace {

using namespace dsbfs;

struct RunRecord {
  std::size_t batch = 0;
  std::uint64_t delta = 0;
  const char* topology = "flat";
  int value_bits = 0;
  int iterations = 0;
  std::uint64_t buckets = 0;
  double modeled_ms = 0;
  double singles_modeled_ms = 0;  // sum over the batch's sources
  double batch_speedup = 0;       // singles / batch
  std::uint64_t update_bytes_remote = 0;
  std::uint64_t reduce_bytes = 0;
  std::uint64_t light_relaxations = 0;
  std::uint64_t heavy_relaxations = 0;
  bool valid = false;
};

void emit_json(std::ostream& os, const std::vector<RunRecord>& runs,
               int scale, const sim::ClusterSpec& spec, std::uint64_t vertices,
               std::uint64_t edges, std::uint32_t threshold,
               const core::BetweennessResult& bc, bool bc_valid,
               std::uint64_t pr_raw, std::uint64_t pr_varint,
               std::uint64_t pr_gorilla, bool all_checks) {
  os << "{\n  \"graph\": {\"scale\": " << scale << ", \"vertices\": "
     << vertices << ", \"edges\": " << edges << ", \"cluster\": \""
     << spec.num_ranks << "x" << spec.gpus_per_rank
     << "\", \"degree_threshold\": " << threshold << "},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    os << "    {\"batch\": " << r.batch << ", \"delta\": " << r.delta
       << ", \"topology\": \"" << r.topology << "\""
       << ", \"value_bits\": " << r.value_bits
       << ", \"iterations\": " << r.iterations
       << ", \"buckets\": " << r.buckets
       << ", \"modeled_ms\": " << r.modeled_ms
       << ", \"singles_modeled_ms\": " << r.singles_modeled_ms
       << ", \"batch_speedup\": " << r.batch_speedup
       << ", \"update_bytes_remote\": " << r.update_bytes_remote
       << ", \"reduce_bytes\": " << r.reduce_bytes
       << ", \"light_relaxations\": " << r.light_relaxations
       << ", \"heavy_relaxations\": " << r.heavy_relaxations
       << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"betweenness\": {\"forward_iterations\": "
     << bc.forward_iterations
     << ", \"reverse_iterations\": " << bc.reverse_iterations
     << ", \"max_depth\": " << bc.max_depth
     << ", \"modeled_ms\": " << bc.modeled_ms
     << ", \"update_bytes_remote\": " << bc.update_bytes_remote
     << ", \"reduce_bytes\": " << bc.reduce_bytes
     << ", \"valid\": " << (bc_valid ? "true" : "false") << "},\n"
     << "  \"pagerank_wire\": {\"raw_bytes\": " << pr_raw
     << ", \"adaptive_varint_bytes\": " << pr_varint
     << ", \"adaptive_gorilla_bytes\": " << pr_gorilla << "},\n"
     << "  \"checks_passed\": " << (all_checks ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int scale =
      static_cast<int>(cli.get_int("scale", 10, "RMAT graph scale"));
  const int ranks = static_cast<int>(cli.get_int("ranks", 2, "cluster ranks"));
  const int gpus = static_cast<int>(cli.get_int("gpus", 2, "GPUs per rank"));
  const std::int64_t th = cli.get_int("th", 16, "delegate degree threshold");
  if (cli.help_requested()) {
    cli.print_help(
        "Ablation: batch width x delta x topology for batched delta-stepping "
        "SSSP on the lane-valued substrate, plus BC and Gorilla rows");
    return 0;
  }
  std::cerr << "ablation: batched delta-stepping on RMAT scale " << scale
            << ", cluster " << ranks << "x" << gpus << "\n";

  sim::ClusterSpec spec;
  spec.num_ranks = ranks;
  spec.gpus_per_rank = gpus;
  const graph::EdgeList g = graph::rmat_graph500({.scale = scale, .seed = 11});
  const graph::HostCsr host = graph::build_host_csr(g);
  const graph::DistributedGraph dg =
      graph::build_distributed(g, spec, static_cast<std::uint32_t>(th));
  sim::Cluster cluster(spec);

  // Deterministic source pool shared by every configuration.
  std::vector<VertexId> pool;
  for (std::uint64_t k = 0; k < 64; ++k) {
    pool.push_back((k * 13 + 1) % dg.num_vertices());
  }

  const std::vector<std::uint64_t> deltas = {3, 8};
  // Per-delta single-source baselines: modeled time per pool entry (the
  // sequential cost a batched run amortizes) and the serial oracles; the
  // delta = 8, pool[0] metrics feed the W = 1 reproduction checks.
  std::map<std::uint64_t, std::vector<double>> single_ms;
  std::map<std::uint64_t, std::vector<std::vector<std::uint64_t>>> oracle;
  core::DeltaSsspResult single0;
  for (const std::uint64_t delta : deltas) {
    core::DistributedDeltaSssp single(dg, cluster, {.delta = delta});
    auto& ms = single_ms[delta];
    auto& ora = oracle[delta];
    ms.resize(pool.size());
    ora.resize(pool.size());
    for (std::size_t k = 0; k < pool.size(); ++k) {
      core::DeltaSsspResult sr = single.run(pool[k]);
      ms[k] = sr.modeled_ms;
      ora[k] = baseline::serial_delta_sssp(host, pool[k], delta);
      if (delta == 8 && k == 0) single0 = std::move(sr);
    }
  }

  bool ok = true;
  std::vector<RunRecord> runs;
  for (const std::uint64_t delta : deltas) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                    std::size_t{64}}) {
      for (const auto topology :
           {sim::ExchangeTopology::kFlat, sim::ExchangeTopology::kButterfly}) {
        core::BatchSsspOptions options;
        options.delta = delta;
        options.value_bits = 32;
        options.exchange_topology = topology;
        core::DistributedBatchSssp sssp(dg, cluster, options);
        const std::vector<VertexId> sources(pool.begin(),
                                            pool.begin() + batch);
        const core::BatchSsspResult r = sssp.run(sources);

        RunRecord rec;
        rec.batch = batch;
        rec.delta = delta;
        rec.topology =
            topology == sim::ExchangeTopology::kFlat ? "flat" : "butterfly";
        rec.value_bits = options.value_bits;
        rec.iterations = r.iterations;
        rec.buckets = r.buckets_processed;
        rec.modeled_ms = r.modeled_ms;
        for (std::size_t k = 0; k < batch; ++k) {
          rec.singles_modeled_ms += single_ms[delta][k];
        }
        rec.batch_speedup =
            rec.modeled_ms > 0 ? rec.singles_modeled_ms / rec.modeled_ms : 0;
        rec.update_bytes_remote = r.update_bytes_remote;
        rec.reduce_bytes = r.reduce_bytes;
        rec.light_relaxations = r.light_relaxations;
        rec.heavy_relaxations = r.heavy_relaxations;

        rec.valid = true;
        for (std::size_t lane = 0; lane < batch; ++lane) {
          if (r.distances[lane] != oracle[delta][lane]) {
            std::cerr << "FAIL: delta " << delta << " batch " << batch
                      << " lane " << lane
                      << " diverged from serial delta-stepping ("
                      << rec.topology << ")\n";
            rec.valid = false;
            ok = false;
          }
        }
        runs.push_back(rec);
      }
    }
  }

  // ---- W = 1 at full lane width must reproduce the single-source run ----
  {
    core::DistributedBatchSssp sssp(dg, cluster,
                                    {.delta = 8, .value_bits = 64});
    const core::BatchSsspResult r = sssp.run({pool[0]});
    if (r.distances[0] != single0.distances ||
        r.iterations != single0.iterations ||
        r.buckets_processed != single0.buckets_processed ||
        r.update_bytes_remote != single0.update_bytes_remote ||
        r.reduce_bytes != single0.reduce_bytes) {
      std::cerr << "FAIL: W=1/64-bit batch does not reproduce the "
                << "single-source run (iterations " << r.iterations << " vs "
                << single0.iterations << ", wire " << r.update_bytes_remote
                << " vs " << single0.update_bytes_remote << ", reduce "
                << r.reduce_bytes << " vs " << single0.reduce_bytes << ")\n";
      ok = false;
    }
  }

  // ---- the tentpole claim: W = 64 amortization beats 8x ------------------
  for (const RunRecord& r : runs) {
    if (r.batch != 64) continue;
    if (r.batch_speedup <= 8.0) {
      std::cerr << "FAIL: batch 64 (delta " << r.delta << ", " << r.topology
                << ") modeled speedup " << r.batch_speedup
                << " <= 8x over sequential singles\n";
      ok = false;
    }
  }

  // ---- betweenness mini-run: two composed engine runs --------------------
  const std::vector<VertexId> bc_sources(pool.begin(), pool.begin() + 8);
  core::BetweennessCentrality bc_algo(dg, cluster);
  const core::BetweennessResult bc = bc_algo.run(bc_sources);
  const std::vector<double> bc_oracle = baseline::serial_brandes(
      host, std::span<const VertexId>(bc_sources));
  bool bc_valid = bc.scores == bc_oracle;
  if (!bc_valid) {
    std::cerr << "FAIL: betweenness scores diverge from serial Brandes\n";
    ok = false;
  }
  if (bc.modeled.iteration_end_ms.size() !=
      static_cast<std::size_t>(bc.forward_iterations + bc.reverse_iterations)) {
    std::cerr << "FAIL: composed BC model lost iteration rows ("
              << bc.modeled.iteration_end_ms.size() << " vs "
              << bc.forward_iterations + bc.reverse_iterations << ")\n";
    bc_valid = false;
    ok = false;
  }

  // ---- PageRank wire: raw vs adaptive varint vs adaptive Gorilla ---------
  std::uint64_t pr_bytes[3] = {0, 0, 0};
  std::vector<double> pr_ranks[3];
  for (int mode = 0; mode < 3; ++mode) {
    core::PagerankOptions options;
    options.max_iterations = 10;
    options.compress = mode >= 1;
    options.adaptive_compress = mode >= 1;
    options.gorilla = mode == 2;
    core::DistributedPagerank pr(dg, cluster, options);
    const core::PagerankResult r = pr.run();
    pr_bytes[mode] = r.update_bytes_remote;
    pr_ranks[mode] = r.ranks;
  }
  if (pr_ranks[1] != pr_ranks[0] || pr_ranks[2] != pr_ranks[0]) {
    std::cerr << "FAIL: compressed PageRank ranks diverge from raw\n";
    ok = false;
  }
  // The adaptive guarantee: per-bin trial-encode never ships more than raw.
  if (pr_bytes[1] > pr_bytes[0] || pr_bytes[2] > pr_bytes[0]) {
    std::cerr << "FAIL: adaptive compression shipped more than raw (raw "
              << pr_bytes[0] << ", varint " << pr_bytes[1] << ", gorilla "
              << pr_bytes[2] << ")\n";
    ok = false;
  }

  if (ok) {
    std::cerr << "checks passed: every lane matches serial delta-stepping, "
              << "W=1 reproduces the single-source run, W=64 exceeds 8x "
              << "modeled speedup, BC matches serial Brandes through the "
              << "composed model, and adaptive Gorilla never exceeds raw\n";
  }
  emit_json(std::cout, runs, scale, spec, dg.num_vertices(), dg.num_edges(),
            static_cast<std::uint32_t>(th), bc, bc_valid, pr_bytes[0],
            pr_bytes[1], pr_bytes[2], ok);
  return ok ? 0 : 1;
}
