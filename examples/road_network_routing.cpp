// Road-network-style routing with distributed delta-stepping SSSP.
//
// Builds a weighted grid (a road lattice with stored per-edge travel
// costs), runs delta-stepping across a simulated GPU cluster for several
// bucket widths, validates each against serial delta-stepping, and prints
// the delta tradeoff: small buckets approximate Dijkstra (many rounds,
// few wasted relaxations), huge buckets approximate Bellman-Ford.
//
//   ./road_network_routing [--rows=64] [--cols=64] [--max-weight=32]
//                          [--gpus=1x2x2] [--threshold=8]
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>

#include "baseline/host_apps.hpp"
#include "core/delta_sssp.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int rows = static_cast<int>(cli.get_int("rows", 64, "grid rows"));
  const int cols = static_cast<int>(cli.get_int("cols", 64, "grid columns"));
  const std::uint32_t max_weight = static_cast<std::uint32_t>(
      cli.get_int("max-weight", 32, "edge travel costs in [1, max-weight]"));
  const std::string gpus = cli.get_string("gpus", "1x2x2", "cluster NxRxG");
  const std::uint32_t threshold = static_cast<std::uint32_t>(
      cli.get_int("threshold", 8, "delegate degree threshold"));
  if (cli.help_requested()) {
    cli.print_help("Road-network routing: delta-stepping SSSP bucket sweep");
    return 0;
  }

  // 1. A road lattice with stored travel costs (symmetric per road segment).
  graph::EdgeList roads = graph::grid_graph(rows, cols);
  graph::assign_uniform_weights(roads, max_weight, /*seed=*/17);
  std::printf("road network: %dx%d grid, %llu junctions, %llu segments, "
              "costs in [1, %u]\n",
              rows, cols, static_cast<unsigned long long>(roads.num_vertices),
              static_cast<unsigned long long>(roads.size() / 2), max_weight);

  // 2. Distribute it over the simulated cluster.
  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(roads, spec, threshold, &cluster);
  std::printf("cluster: %dx%d GPUs, TH=%u, %u delegates\n\n", spec.num_ranks,
              spec.gpus_per_rank, threshold, dg.num_delegates());

  // 3. Serial oracle once; sweep the bucket width distributed.
  const VertexId depot = 0;  // top-left junction
  const graph::WeightedHostCsr host = graph::build_weighted_host_csr(roads);
  const auto oracle = baseline::serial_delta_sssp(
      host.csr, std::span<const std::uint32_t>(host.weights), depot,
      std::max(1u, max_weight / 2));

  std::printf("%10s %8s %8s %8s %12s %12s %10s %7s\n", "delta", "rounds",
              "buckets", "heavy", "light_relax", "heavy_relax", "modeled_ms",
              "valid");
  const std::uint64_t deltas[] = {1, max_weight / 4, max_weight / 2,
                                  2ULL * max_weight, kInfiniteDistance};
  for (const std::uint64_t delta : deltas) {
    core::DeltaSsspOptions options;
    options.delta = delta == 0 ? 1 : delta;
    core::DistributedDeltaSssp router(dg, cluster, options);
    const core::DeltaSsspResult r = router.run(depot);
    const bool valid = r.distances == oracle;
    std::printf("%10s %8d %8llu %8d %12llu %12llu %10.3f %7s\n",
                delta == kInfiniteDistance
                    ? "inf"
                    : std::to_string(options.delta).c_str(),
                r.iterations,
                static_cast<unsigned long long>(r.buckets_processed),
                r.heavy_iterations,
                static_cast<unsigned long long>(r.light_relaxations),
                static_cast<unsigned long long>(r.heavy_relaxations),
                r.modeled_ms, valid ? "yes" : "NO");
    if (!valid) return 1;
  }

  // 4. One concrete route: the far corner of the map.
  core::DistributedDeltaSssp router(dg, cluster,
                                    {.delta = std::max(1u, max_weight / 2)});
  const core::DeltaSsspResult r = router.run(depot);
  const VertexId corner = roads.num_vertices - 1;
  std::printf("\ncheapest route depot -> far corner: cost %llu over %llu "
              "junction distances computed\n",
              static_cast<unsigned long long>(r.distances[corner]),
              static_cast<unsigned long long>(r.distances.size()));
  return 0;
}
