// Social-network analysis on a Friendster-like graph: the workload class
// that motivates degree separation (the paper's intro).  Exercises the
// whole public API on one dataset:
//   * repeated BFS -- hop-distance histogram ("degrees of separation"),
//   * connected components -- community structure and isolated accounts,
//   * PageRank -- influencer ranking (hubs == delegates),
//   * SSSP -- weighted closeness (tie strength as hashed edge weights).
//
//   ./social_network_analysis --scale=17 --gpus=1x2x2 --seeds=4
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "core/bfs.hpp"
#include "core/components.hpp"
#include "core/pagerank.hpp"
#include "core/sssp.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/partition_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(
      cli.get_int("scale", 17, "log2 of synthetic friendster vertices"));
  const std::string gpus = cli.get_string("gpus", "1x2x2", "cluster NxRxG");
  const int seeds = static_cast<int>(cli.get_int("seeds", 4, "seed users"));
  if (cli.help_requested()) {
    cli.print_help("Degrees-of-separation analysis on a social graph");
    return 0;
  }

  const graph::EdgeList g = graph::friendster_like({.scale = scale, .seed = 3});
  const auto degrees = graph::out_degrees(g);
  std::printf("social graph: %s users, %s friendship edges, %s inactive\n",
              util::format_count(g.num_vertices).c_str(),
              util::format_count(g.size() / 2).c_str(),
              util::format_count(graph::count_zero_degree(degrees)).c_str());

  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  const graph::PartitionStatsSweeper sweeper(g);
  const std::uint32_t th = graph::suggest_threshold(sweeper, spec.total_gpus());
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  std::printf("hubs (degree > %u): %s users are replicated as delegates\n\n",
              th, util::format_count(dg.num_delegates()).c_str());

  core::DistributedBfs bfs(dg, cluster);

  util::Table summary({"seed", "reachable", "reach_pct", "median_hops",
                       "p99_hops", "max_hops", "GTEPS(modeled)"});
  std::map<Depth, std::uint64_t> global_histogram;
  for (int s = 0; s < seeds; ++s) {
    const VertexId seed = bfs.sample_source(static_cast<std::uint64_t>(s) + 11);
    const core::BfsResult r = bfs.run(seed);

    std::map<Depth, std::uint64_t> histogram;
    std::uint64_t reachable = 0;
    Depth max_depth = 0;
    for (const Depth d : r.distances) {
      if (d == kUnvisited) continue;
      ++histogram[d];
      ++reachable;
      max_depth = std::max(max_depth, d);
    }
    for (const auto& [d, c] : histogram) global_histogram[d] += c;

    // Median and p99 hop counts over reached users.
    Depth median = 0, p99 = 0;
    std::uint64_t acc = 0;
    for (const auto& [d, c] : histogram) {
      acc += c;
      if (median == 0 && acc * 2 >= reachable) median = d;
      if (p99 == 0 && acc * 100 >= reachable * 99) p99 = d;
    }
    summary.row()
        .add(static_cast<std::uint64_t>(seed))
        .add(reachable)
        .add(100.0 * static_cast<double>(reachable) /
                 static_cast<double>(g.num_vertices),
             1)
        .add(static_cast<int>(median))
        .add(static_cast<int>(p99))
        .add(static_cast<int>(max_depth))
        .add(r.metrics.modeled_gteps, 3);
  }
  summary.print(std::cout);

  std::printf("\ndegrees-of-separation histogram (all seeds combined):\n");
  util::Table hist({"hops", "users", "share_pct"});
  std::uint64_t total = 0;
  for (const auto& [d, c] : global_histogram) total += c;
  for (const auto& [d, c] : global_histogram) {
    hist.row().add(static_cast<int>(d)).add(c).add(
        100.0 * static_cast<double>(c) / static_cast<double>(total), 2);
  }
  hist.print(std::cout);
  std::printf("\nNote the small-world shape: most reachable users sit within"
              "\na handful of hops of any seed -- the dense hub core the"
              "\ndelegate mechanism exploits.\n");

  // ---- Community structure (connected components). ---------------------
  core::ConnectedComponents cc(dg, cluster);
  const core::CcResult ccr = cc.run();
  std::map<VertexId, std::uint64_t> component_sizes;
  for (const VertexId label : ccr.labels) ++component_sizes[label];
  std::uint64_t largest = 0, singletons = 0;
  for (const auto& [label, size] : component_sizes) {
    largest = std::max(largest, size);
    singletons += size == 1 ? 1 : 0;
  }
  std::printf("\ncommunities: %s components in %d label-propagation rounds;"
              "\nlargest covers %.1f%% of users; %s inactive singletons\n",
              util::format_count(ccr.num_components).c_str(), ccr.iterations,
              100.0 * static_cast<double>(largest) /
                  static_cast<double>(g.num_vertices),
              util::format_count(singletons).c_str());

  // ---- Influencers (PageRank). ------------------------------------------
  core::PagerankOptions pr_options;
  pr_options.max_iterations = 30;
  core::DistributedPagerank pagerank(dg, cluster, pr_options);
  const core::PagerankResult prr = pagerank.run();
  std::vector<VertexId> order(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return prr.ranks[a] > prr.ranks[b];
                    });
  std::printf("\ntop influencers after %d PageRank iterations:\n",
              prr.iterations);
  util::Table top({"user", "pagerank", "friends", "is_hub_delegate"});
  for (int i = 0; i < 5; ++i) {
    const VertexId v = order[static_cast<std::size_t>(i)];
    top.row()
        .add(static_cast<std::uint64_t>(v))
        .add(prr.ranks[v] * 1e6, 3)
        .add(static_cast<std::uint64_t>(dg.degrees()[v]))
        .add(dg.delegates().is_delegate(v) ? "yes" : "no");
  }
  top.print(std::cout);
  std::printf("(pagerank column scaled by 1e6; hubs should dominate)\n");

  // ---- Weighted closeness (SSSP). ----------------------------------------
  // Treat hashed edge weights as tie strength (1 = close friend, 15 =
  // acquaintance) and measure how weighted distance stretches hop counts.
  const VertexId hub = order[0];
  core::DistributedSssp sssp(dg, cluster);
  const core::SsspResult sr = sssp.run(hub);
  const core::BfsResult hop = bfs.run(hub);
  std::uint64_t weighted_sum = 0, hops_sum = 0, reached = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    if (sr.distances[v] == kInfiniteDistance || v == hub) continue;
    weighted_sum += sr.distances[v];
    hops_sum += static_cast<std::uint64_t>(hop.distances[v]);
    ++reached;
  }
  if (reached > 0) {
    std::printf(
        "\nweighted reach of top influencer %llu (%d SSSP rounds):\n"
        "mean weighted distance %.2f vs %.2f hops -- stretch %.2fx\n",
        static_cast<unsigned long long>(hub), sr.iterations,
        static_cast<double>(weighted_sum) / static_cast<double>(reached),
        static_cast<double>(hops_sum) / static_cast<double>(reached),
        static_cast<double>(weighted_sum) / static_cast<double>(hops_sum));
  }
  return 0;
}
