// Landmark distance index: the "millions of users" serving story in
// miniature.  A distance-sketch tier answers "how far is u from v" queries
// with min over landmarks L of d(u, L) + d(L, v) -- social-graph ranking,
// routing preconditioners, and friend-suggestion features all run on this
// shape.  Building the index needs one BFS per landmark; the batched
// multi-source BFS (core::DistributedBatchBfs) builds all 64 columns of the
// sketch in ONE engine run, amortizing every adjacency sweep, delegate
// mask reduction and exchange across the lanes.
//
//   ./landmark_distance_index --scale=12 --landmarks=64 --gpus=1x2x2
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "baseline/serial_bfs.hpp"
#include "core/batch_bfs.hpp"
#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int scale =
      static_cast<int>(cli.get_int("scale", 12, "RMAT graph scale"));
  const int landmarks = static_cast<int>(
      cli.get_int("landmarks", 64, "landmark count (<= 64, one lane each)"));
  const std::string gpus = cli.get_string("gpus", "1x2x2", "cluster NxRxG");
  if (cli.help_requested()) {
    cli.print_help("64-landmark distance sketch from one batched BFS run");
    return 0;
  }

  const graph::EdgeList g = graph::rmat_graph500({.scale = scale, .seed = 21});
  const graph::HostCsr host = graph::build_host_csr(g);
  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 32);
  std::printf("social graph: %llu vertices, %llu edges, cluster %dx%d\n",
              static_cast<unsigned long long>(dg.num_vertices()),
              static_cast<unsigned long long>(dg.num_edges()),
              spec.num_ranks, spec.gpus_per_rank);

  // ---- Landmark selection: the highest-degree vertices (classic choice:
  // hubs cover the most shortest paths). ----------------------------------
  std::vector<VertexId> order(dg.num_vertices());
  for (VertexId v = 0; v < dg.num_vertices(); ++v) order[v] = v;
  const std::size_t keep = std::min<std::size_t>(
      static_cast<std::size_t>(landmarks), order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](VertexId a, VertexId b) {
                      return dg.degrees()[a] > dg.degrees()[b];
                    });
  std::vector<VertexId> sources(
      order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep));

  // ---- One batched run builds every sketch column. ----------------------
  core::DistributedBatchBfs batch(dg, cluster, {});
  const core::BatchBfsResult index = batch.run(sources);
  std::printf("\nbatched index build: %zu landmarks in one run, lane width "
              "%d\n  iterations %d, modeled %.3f ms, %.1f lane bits per "
              "frontier vertex\n",
              sources.size(), index.lane_bits, index.metrics.iterations,
              index.metrics.modeled_ms,
              [&] {
                double bits = 0, verts = 0;
                for (const auto& it : index.metrics.per_iteration) {
                  bits += static_cast<double>(it.frontier_lane_bits);
                  verts += static_cast<double>(it.frontier_normals);
                }
                return verts > 0 ? bits / verts : 0.0;
              }());

  // The serving-cost comparison: the same index built one landmark at a
  // time (forced push, like the batch).
  core::BfsOptions single_options;
  single_options.direction_optimized = false;
  core::DistributedBfs single(dg, cluster, single_options);
  double singles_ms = 0;
  for (const VertexId s : sources) {
    singles_ms += single.run(s).metrics.modeled_ms;
  }
  std::printf("  sequential build of the same index: %.3f ms modeled -> "
              "batch speedup %.1fx\n",
              singles_ms, singles_ms / index.metrics.modeled_ms);

  // ---- Query demo: landmark upper bounds vs exact distances. ------------
  util::Table table({"query", "exact", "sketch_est", "via_landmark"});
  util::SequentialRng rng(99);
  int exact_hits = 0, queries = 0;
  for (int q = 0; q < 8; ++q) {
    const VertexId u = rng.next() % dg.num_vertices();
    const VertexId v = rng.next() % dg.num_vertices();
    const auto exact = baseline::serial_bfs(host, u);
    if (exact[v] == kUnvisited) continue;

    Depth best = kUnvisited;
    VertexId best_landmark = kInvalidVertex;
    for (std::size_t l = 0; l < sources.size(); ++l) {
      const Depth du = index.distances[l][u];
      const Depth dv = index.distances[l][v];
      if (du == kUnvisited || dv == kUnvisited) continue;
      const Depth est = du + dv;
      if (best == kUnvisited || est < best) {
        best = est;
        best_landmark = sources[l];
      }
    }
    ++queries;
    if (best == exact[v]) ++exact_hits;
    util::Table& row = table.row();
    row.add(std::to_string(u) + "->" + std::to_string(v))
        .add(static_cast<int>(exact[v]));
    if (best == kUnvisited) {
      // Connected pair no landmark covers: the sketch abstains (a serving
      // tier would fall back to an on-demand BFS).
      row.add("no cover").add("-");
    } else {
      row.add(static_cast<int>(best)).add(best_landmark);
    }
  }
  table.print(std::cout);
  std::printf("\n%d/%d queries answered exactly by the 2-hop sketch (the "
              "rest are upper bounds);\nper-query cost is 2 x %d sketch "
              "reads instead of a BFS.\n",
              exact_hits, queries, static_cast<int>(sources.size()));
  return 0;
}
