// Graph500-style benchmark runner: the full protocol -- generate an RMAT
// graph at the requested scale, run BFS from many pseudo-random sources,
// validate each result, and report the TEPS statistics (geometric/harmonic
// means) the way Graph500 submissions do.
//
//   ./graph500_runner --scale=17 --gpus=2x2x2 --sources=16
#include <cstdio>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/partition_stats.hpp"
#include "graph/rmat.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 17, "RMAT scale"));
  const std::string gpus = cli.get_string("gpus", "2x2x2", "cluster NxRxG");
  const int sources =
      static_cast<int>(cli.get_int("sources", 16, "number of BFS roots"));
  const bool do_validate =
      cli.get_flag("validate", true, "validate every BFS output");
  const bool direction_optimized =
      cli.get_flag("do", true, "direction optimization");
  if (cli.help_requested()) {
    cli.print_help("Graph500-style BFS benchmark with validation");
    return 0;
  }

  util::Timer total;
  std::printf("== generation ==\n");
  util::Timer gen_timer;
  const graph::EdgeList edges =
      graph::rmat_graph500({.scale = scale, .seed = 2});
  std::printf("scale %d: n=%s m=%s in %.1f ms\n", scale,
              util::format_count(edges.num_vertices).c_str(),
              util::format_count(edges.size()).c_str(),
              gen_timer.elapsed_ms());

  std::printf("\n== construction ==\n");
  util::Timer build_timer;
  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  const graph::PartitionStatsSweeper sweeper(edges);
  const std::uint32_t th =
      graph::suggest_threshold(sweeper, spec.total_gpus());
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(edges, spec, th, &cluster);
  std::printf("cluster %s (%d GPUs), TH=%u, d=%s, construction %.1f ms\n",
              spec.to_string().c_str(), spec.total_gpus(), th,
              util::format_count(dg.num_delegates()).c_str(),
              build_timer.elapsed_ms());

  std::printf("\n== search ==\n");
  core::BfsOptions options;
  options.direction_optimized = direction_optimized;
  core::DistributedBfs bfs(dg, cluster, options);

  util::Summary modeled_teps, measured_teps, iterations;
  int validated = 0, skipped = 0;
  for (int s = 0; s < sources; ++s) {
    const VertexId source = bfs.sample_source(static_cast<std::uint64_t>(s));
    const core::BfsResult result = bfs.run(source);
    if (result.metrics.iterations <= 1) {
      ++skipped;  // paper protocol: discard runs of one iteration
      continue;
    }
    if (do_validate) {
      const auto report =
          core::validate_distances(edges, source, result.distances);
      if (!report.ok) {
        std::printf("VALIDATION FAILED at source %llu: %s\n",
                    static_cast<unsigned long long>(source),
                    report.error.c_str());
        return 1;
      }
      ++validated;
    }
    modeled_teps.add(result.metrics.modeled_gteps * 1e9);
    measured_teps.add(result.metrics.measured_gteps * 1e9);
    iterations.add(result.metrics.iterations);
  }

  std::printf("ran %zu searches (%d skipped), %d validated\n",
              modeled_teps.count(), skipped, validated);
  std::printf("\n== results (modeled P100/EDR cluster) ==\n");
  std::printf("geometric-mean  GTEPS: %10.3f\n", modeled_teps.geomean() / 1e9);
  std::printf("harmonic-mean   GTEPS: %10.3f\n", modeled_teps.harmean() / 1e9);
  std::printf("min / max       GTEPS: %10.3f / %.3f\n",
              modeled_teps.min() / 1e9, modeled_teps.max() / 1e9);
  std::printf("mean iterations      : %10.1f\n", iterations.mean());
  std::printf("\n(measured on this host: geomean %.3f GTEPS)\n",
              measured_teps.geomean() / 1e9);
  std::printf("total wall time %.1f s\n", total.elapsed_ms() / 1e3);
  return 0;
}
