// Web-graph reachability: the long-tail workload of Section VI-D.  A
// crawler-style question -- how many pages are reachable from a landing
// page, and how deep does the frontier go -- on a WDC-like host-chain
// graph.  Also demonstrates when *not* to use direction optimization:
// with ~300 tiny frontiers, the DO decision overhead outweighs its
// savings, matching the paper's WDC 2012 finding.
//
//   ./web_crawl_reachability --chain=200 --community=512 --gpus=2x2x2
#include <cstdio>
#include <iostream>

#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int chain = static_cast<int>(
      cli.get_int("chain", 200, "site communities along the chain"));
  const int community = static_cast<int>(
      cli.get_int("community", 512, "pages per site community"));
  const std::string gpus = cli.get_string("gpus", "2x2x2", "cluster NxRxG");
  if (cli.help_requested()) {
    cli.print_help("Crawl-reachability analysis on a long-tail web graph");
    return 0;
  }

  graph::WebGraphLikeParams params;
  params.chain_length = chain;
  params.community_size = community;
  const graph::EdgeList g = graph::webgraph_like(params);
  std::printf("web graph: %s pages, %s hyperlinks (symmetrized)\n",
              util::format_count(g.num_vertices).c_str(),
              util::format_count(g.size()).c_str());

  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 256);

  util::Table table({"variant", "reachable", "max_depth", "iterations",
                     "modeled_ms", "per_iter_us", "edges_traversed"});
  core::BfsResult last_result;
  for (const bool use_do : {false, true}) {
    core::BfsOptions options;
    options.direction_optimized = use_do;
    core::DistributedBfs bfs(dg, cluster, options);
    const core::BfsResult r = bfs.run(/*landing page*/ 0);

    std::uint64_t reachable = 0;
    Depth max_depth = 0;
    for (const Depth d : r.distances) {
      if (d == kUnvisited) continue;
      ++reachable;
      max_depth = std::max(max_depth, d);
    }
    table.row()
        .add(use_do ? "DOBFS" : "BFS")
        .add(reachable)
        .add(static_cast<int>(max_depth))
        .add(r.metrics.iterations)
        .add(r.metrics.modeled_ms, 3)
        .add(r.metrics.modeled_ms * 1000.0 /
                 std::max(1, r.metrics.iterations),
             1)
        .add(r.metrics.edges_traversed);
    last_result = r;
  }
  table.print(std::cout);

  // Crawl-depth profile: pages discovered per BFS wave (coarse buckets).
  std::printf("\ncrawl-depth profile (pages per 20-hop band):\n");
  util::Table profile({"depth_band", "pages"});
  std::vector<std::uint64_t> bands;
  for (const Depth d : last_result.distances) {
    if (d == kUnvisited) continue;
    const std::size_t band = static_cast<std::size_t>(d) / 20;
    if (band >= bands.size()) bands.resize(band + 1, 0);
    ++bands[band];
  }
  for (std::size_t b = 0; b < bands.size(); ++b) {
    profile.row()
        .add(std::to_string(b * 20) + ".." + std::to_string(b * 20 + 19))
        .add(bands[b]);
  }
  profile.print(std::cout);
  std::printf("\nExpected (paper Section VI-D): hundreds of iterations, flat"
              "\ndiscovery profile, and DOBFS at or slightly below plain BFS"
              "\n-- per-iteration overhead dominates long-tail traversals.\n");
  return 0;
}
