// Quickstart: build a distributed graph, run one direction-optimized BFS on
// a simulated 4-GPU cluster, and print distances plus the run metrics.
//
//   ./quickstart [--scale=16] [--gpus=1x2x2] [--threshold=0 (auto)]
//                [--fault-seed=1] [--fault-drop-rate=0] [--fault-corrupt-rate=0]
#include <cstdio>
#include <iostream>

#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/partition_stats.hpp"
#include "graph/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dsbfs;
  util::Cli cli(argc, argv);
  const int scale = static_cast<int>(cli.get_int("scale", 16, "RMAT scale"));
  const std::string gpus = cli.get_string("gpus", "1x2x2", "cluster NxRxG");
  std::uint32_t threshold = static_cast<std::uint32_t>(
      cli.get_int("threshold", 0, "degree threshold (0 = auto-suggest)"));
  core::BfsOptions options;
  options.resilience.faults.seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 1, "fault schedule seed"));
  options.resilience.faults.drop_rate = cli.get_double(
      "fault-drop-rate", 0.0, "per-message drop probability (chaos mode)");
  options.resilience.faults.corrupt_rate = cli.get_double(
      "fault-corrupt-rate", 0.0, "per-message bit-flip probability");
  if (cli.help_requested()) {
    cli.print_help("Quickstart: one DOBFS run on a simulated GPU cluster");
    return 0;
  }

  // 1. Generate a Graph500 RMAT graph (symmetric, label-randomized).
  const graph::EdgeList edges =
      graph::rmat_graph500({.scale = scale, .seed = 1});
  std::printf("graph: n=%s  m=%s (directed, after doubling)\n",
              util::format_count(edges.num_vertices).c_str(),
              util::format_count(edges.size()).c_str());

  // 2. Pick a degree threshold and build the degree-separated distributed
  //    representation for the requested cluster shape.
  const sim::ClusterSpec spec = sim::ClusterSpec::parse(gpus);
  if (threshold == 0) {
    const graph::PartitionStatsSweeper sweeper(edges);
    threshold = graph::suggest_threshold(sweeper, spec.total_gpus());
  }
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(edges, spec, threshold, &cluster);
  std::printf("partition: TH=%u  delegates=%s  |Enn|=%s  memory=%s\n",
              threshold, util::format_count(dg.num_delegates()).c_str(),
              util::format_count(dg.enn()).c_str(),
              util::format_bytes(dg.total_subgraph_bytes()).c_str());

  // 3. Run a direction-optimized BFS from a random source (under the chaos
  //    schedule when the fault flags are set; distances must come out
  //    identical either way -- the self-healing wire absorbs the faults).
  core::DistributedBfs bfs(dg, cluster, options);
  const VertexId source = bfs.sample_source(7);
  const core::BfsResult result = bfs.run(source);

  // 4. Validate and report.
  const auto report = core::validate_distances(edges, source, result.distances);
  std::printf("\nBFS from vertex %llu: %s\n",
              static_cast<unsigned long long>(source),
              report.ok ? "VALID" : report.error.c_str());
  std::printf("reached %s vertices, max depth %d, %d iterations (%d with "
              "delegate reduction)\n",
              util::format_count(report.reached).c_str(), report.max_depth,
              result.metrics.iterations,
              result.metrics.delegate_reduce_iterations);
  std::printf("workload: %s edges traversed (m' of Section IV-B)\n",
              util::format_count(result.metrics.edges_traversed).c_str());
  std::printf("modeled cluster time %.3f ms -> %.3f GTEPS  (measured here: "
              "%.1f ms)\n",
              result.metrics.modeled_ms, result.metrics.modeled_gteps,
              result.metrics.measured_ms);
  if (options.resilience.faults.enabled()) {
    std::printf("resilience: %zu injected faults, %llu retransmissions, "
                "%llu checksum rejects, %.3f ms recovery\n",
                result.metrics.fault.events.size(),
                static_cast<unsigned long long>(result.metrics.retries),
                static_cast<unsigned long long>(result.metrics.corrupt_bins),
                static_cast<double>(result.metrics.recovery_ns) / 1e6);
  }

  std::printf("\nper-iteration trace (first 10):\n");
  util::Table trace({"iter", "normal_frontier", "new_delegates",
                     "edges_traversed", "directions(dd,dn,nd)"});
  int shown = 0;
  for (const auto& it : result.metrics.per_iteration) {
    if (shown++ >= 10) break;
    std::string dirs;
    dirs += it.dd_backward ? 'B' : 'F';
    dirs += it.dn_backward ? 'B' : 'F';
    dirs += it.nd_backward ? 'B' : 'F';
    trace.row()
        .add(shown - 1)
        .add(it.frontier_normals)
        .add(it.new_delegates)
        .add(it.edges_traversed)
        .add(dirs);
  }
  trace.print(std::cout);
  return report.ok ? 0 : 1;
}
