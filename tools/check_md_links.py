#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/ (CI gate, stdlib only).

Verifies every inline link's target:
  * relative file targets must exist on disk (resolved from the linking
    file's directory);
  * ``#anchor`` fragments pointing at a markdown file (or at the linking
    file itself) must match a heading, using GitHub's slug rules
    (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
    suffixed -1, -2, ...);
  * absolute URLs are accepted syntactically but never fetched (CI must
    not depend on the network).

Usage: check_md_links.py FILE_OR_DIR [FILE_OR_DIR ...]
Exits non-zero listing every broken link, so new docs cannot rot silently.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target "title") — target ends at the first
# unescaped closing paren or whitespace-before-title.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading)           # drop code ticks
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)                  # strip punctuation
    return text.replace(" ", "-")


def anchors_of(md_path: Path) -> set[str]:
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in md_path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_md_files(roots: list[str]):
    for root in roots:
        p = Path(root)
        if p.is_dir():
            yield from sorted(p.rglob("*.md"))
        elif p.suffix == ".md":
            yield p
        else:
            sys.exit(f"error: {root} is neither a directory nor a .md file")


def iter_links(md_path: Path):
    in_fence = False
    for lineno, line in enumerate(
            md_path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Ignore inline code spans: links inside backticks are examples.
        stripped = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(stripped):
            yield lineno, m.group(1)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors: list[str] = []
    checked = 0
    for md in iter_md_files(argv[1:]):
        for lineno, target in iter_links(md):
            checked += 1
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path_part, _, anchor = target.partition("#")
            dest = (md.parent / path_part).resolve() if path_part else md
            if not dest.exists():
                errors.append(f"{md}:{lineno}: broken link: {target}")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(
                        f"{md}:{lineno}: missing anchor #{anchor} in {dest}")
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {checked} links, {len(errors)} broken", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
