#include "core/pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baseline/host_apps.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

PagerankResult run_pr(const graph::EdgeList& g, sim::ClusterSpec spec,
                      std::uint32_t th, PagerankOptions options = {}) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  DistributedPagerank pr(dg, cluster, options);
  return pr.run();
}

void expect_matches_host(const graph::EdgeList& g, sim::ClusterSpec spec,
                         std::uint32_t th, double tolerance = 1e-9) {
  const PagerankResult r = run_pr(g, spec, th);
  const auto expected = baseline::serial_pagerank(graph::build_host_csr(g));
  ASSERT_EQ(r.ranks.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(r.ranks[v], expected[v], tolerance)
        << "vertex " << v << " spec " << spec.to_string() << " th " << th;
  }
}

TEST(HostPagerank, RanksSumToOne) {
  const auto ranks = baseline::serial_pagerank(
      graph::build_host_csr(graph::star_graph(20)));
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HostPagerank, StarCenterDominates) {
  const auto ranks = baseline::serial_pagerank(
      graph::build_host_csr(graph::star_graph(20)));
  for (VertexId v = 1; v < 20; ++v) EXPECT_GT(ranks[0], ranks[v]);
}

TEST(HostPagerank, RegularGraphIsUniform) {
  // On a cycle every vertex has the same rank 1/n.
  const auto ranks = baseline::serial_pagerank(
      graph::build_host_csr(graph::cycle_graph(16)));
  for (const double r : ranks) EXPECT_NEAR(r, 1.0 / 16, 1e-9);
}

TEST(Pagerank, MatchesHostOnNamedGraphs) {
  expect_matches_host(graph::star_graph(40), spec_of(2, 2), 8);
  expect_matches_host(graph::path_graph(30), spec_of(2, 2), 4);
  expect_matches_host(graph::grid_graph(6, 5), spec_of(2, 2), 4);
}

TEST(Pagerank, HandlesDanglingVertices) {
  // Vertices with no out-edges exist under symmetry only as isolated
  // vertices; their mass must be redistributed, keeping the sum at 1.
  graph::EdgeList g;
  g.num_vertices = 8;
  g.add(0, 1);
  g.add(1, 0);
  const PagerankResult r = run_pr(g, spec_of(2, 1), 4);
  const double total = std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto expected = baseline::serial_pagerank(graph::build_host_csr(g));
  for (VertexId v = 0; v < 8; ++v) EXPECT_NEAR(r.ranks[v], expected[v], 1e-9);
}

struct PrCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
};

class PagerankSweep : public ::testing::TestWithParam<PrCase> {};

TEST_P(PagerankSweep, RandomGraphsMatchHost) {
  const PrCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 95});
  // Distributed summation reassociates floating point adds; tolerance
  // covers the tiny divergence over 50 iterations.
  expect_matches_host(g, spec_of(c.ranks, c.gpus), c.th, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PagerankSweep,
    ::testing::Values(PrCase{"single", 1, 1, 16}, PrCase{"quad", 2, 2, 16},
                      PrCase{"wide", 4, 2, 32},
                      PrCase{"all_delegates", 2, 1, 0},
                      PrCase{"no_delegates", 2, 2, 1u << 20}),
    [](const auto& info) { return info.param.name; });

TEST(Pagerank, SumInvariantEveryConfiguration) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 96});
  const PagerankResult r = run_pr(g, spec_of(2, 2), 16);
  const double total = std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(r.iterations, 2);
  EXPECT_GT(r.modeled_ms, 0.0);
}

TEST(Pagerank, ConvergenceStopsEarly) {
  PagerankOptions loose;
  loose.tolerance = 1e-3;
  PagerankOptions tight;
  tight.tolerance = 1e-12;
  tight.max_iterations = 60;
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 97});
  const auto fast = run_pr(g, spec_of(2, 1), 16, loose);
  const auto slow = run_pr(g, spec_of(2, 1), 16, tight);
  EXPECT_LT(fast.iterations, slow.iterations);
  EXPECT_LT(slow.final_delta, 1e-10);
}

TEST(Pagerank, HubsOutrankLeaves) {
  // Scale-free graph: delegate (hub) vertices should collect high rank.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 11, .seed = 98});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const auto dg = graph::build_distributed(g, spec, 64);
  DistributedPagerank pr(dg, cluster);
  const PagerankResult r = pr.run();
  // Mean rank of delegates far exceeds the global mean.
  double delegate_sum = 0;
  for (LocalId t = 0; t < dg.num_delegates(); ++t) {
    delegate_sum += r.ranks[dg.delegates().vertex_of(t)];
  }
  const double delegate_mean =
      delegate_sum / std::max<LocalId>(1, dg.num_delegates());
  EXPECT_GT(delegate_mean, 4.0 / static_cast<double>(g.num_vertices));
}

}  // namespace
}  // namespace dsbfs::core
