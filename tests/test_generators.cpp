#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"

namespace dsbfs::graph {
namespace {

TEST(SmallGraphs, PathShape) {
  const EdgeList g = path_graph(5);
  EXPECT_EQ(g.num_vertices, 5u);
  EXPECT_EQ(g.size(), 8u);  // 4 undirected edges doubled
  const auto deg = out_degrees(g);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[2], 2u);
  EXPECT_EQ(deg[4], 1u);
}

TEST(SmallGraphs, PathDistances) {
  const EdgeList g = path_graph(6);
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(dist[v], static_cast<Depth>(v));
  }
}

TEST(SmallGraphs, CycleDegreesAllTwo) {
  const EdgeList g = cycle_graph(7);
  for (const auto d : out_degrees(g)) EXPECT_EQ(d, 2u);
}

TEST(SmallGraphs, StarCenterDegree) {
  const EdgeList g = star_graph(10);
  const auto deg = out_degrees(g);
  EXPECT_EQ(deg[0], 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(deg[v], 1u);
}

TEST(SmallGraphs, CompleteGraphAllPairs) {
  const EdgeList g = complete_graph(5);
  EXPECT_EQ(g.size(), 20u);  // 5*4 directed
  const auto dist = baseline::serial_bfs(build_host_csr(g), 2);
  int at_one = 0;
  for (VertexId v = 0; v < 5; ++v) {
    if (dist[v] == 1) ++at_one;
  }
  EXPECT_EQ(at_one, 4);
}

TEST(SmallGraphs, GridDiameter) {
  const EdgeList g = grid_graph(4, 3);
  EXPECT_EQ(g.num_vertices, 12u);
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  // Manhattan distance to opposite corner.
  EXPECT_EQ(dist[11], 3 + 2);
}

TEST(SmallGraphs, BinaryTreeDepth) {
  const EdgeList g = binary_tree(15);  // complete, 4 levels
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  EXPECT_EQ(dist[14], 3);
  EXPECT_EQ(*std::max_element(dist.begin(), dist.end()), 3);
}

TEST(SmallGraphs, TwoCliquesDisconnected) {
  const EdgeList g = two_cliques(4);
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  for (VertexId v = 0; v < 4; ++v) EXPECT_NE(dist[v], kUnvisited);
  for (VertexId v = 4; v < 8; ++v) EXPECT_EQ(dist[v], kUnvisited);
}

TEST(ErdosRenyi, SizeAndRange) {
  const EdgeList g = erdos_renyi(100, 400, 3);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_EQ(g.size(), 800u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LT(g.src[i], 100u);
    EXPECT_LT(g.dst[i], 100u);
  }
}

TEST(ErdosRenyi, Deterministic) {
  const EdgeList a = erdos_renyi(50, 100, 9);
  const EdgeList b = erdos_renyi(50, 100, 9);
  EXPECT_EQ(a.src, b.src);
  const EdgeList c = erdos_renyi(50, 100, 10);
  EXPECT_NE(a.src, c.src);
}

TEST(ChungLu, EdgeCountAndRange) {
  ChungLuParams p;
  p.num_vertices = 1 << 12;
  p.num_edges = 1 << 15;
  const EdgeList g = chung_lu(p);
  EXPECT_EQ(g.size(), static_cast<std::size_t>(1 << 15));
  for (std::size_t i = 0; i < g.size(); i += 97) {
    EXPECT_LT(g.src[i], p.num_vertices);
    EXPECT_LT(g.dst[i], p.num_vertices);
  }
}

TEST(ChungLu, PowerLawSkew) {
  ChungLuParams p;
  p.num_vertices = 1 << 14;
  p.num_edges = 1 << 18;
  p.exponent = 2.2;
  const EdgeList g = chung_lu(p);
  auto deg = out_degrees(g);
  std::sort(deg.begin(), deg.end(), std::greater<>());
  std::uint64_t top = 0, total = 0;
  for (std::size_t i = 0; i < deg.size(); ++i) {
    total += deg[i];
    if (i < deg.size() / 100) top += deg[i];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.25);
}

TEST(ChungLu, IsolatedFractionRespected) {
  ChungLuParams p;
  p.num_vertices = 1 << 14;
  p.num_edges = 1 << 17;
  p.isolated_fraction = 0.5;
  const EdgeList g = make_symmetric(chung_lu(p));
  const auto deg = out_degrees(g);
  const double isolated = static_cast<double>(count_zero_degree(deg)) /
                          static_cast<double>(p.num_vertices);
  // At least the excluded half is isolated (plus unlucky actives).
  EXPECT_GT(isolated, 0.45);
  EXPECT_LT(isolated, 0.75);
}

TEST(FriendsterLike, MatchesPaperShape) {
  // Section VI-D: about half the vertices isolated; dense scale-free core.
  const EdgeList g = friendster_like({.scale = 14, .seed = 1});
  const auto deg = out_degrees(g);
  const double isolated = static_cast<double>(count_zero_degree(deg)) /
                          static_cast<double>(g.num_vertices);
  EXPECT_GT(isolated, 0.4);
  EXPECT_LT(isolated, 0.75);
  // Symmetric by construction.
  std::uint64_t sum = 0;
  for (const auto d : deg) sum += d;
  EXPECT_EQ(sum, g.size());
}

TEST(WebGraphLike, LongDiameter) {
  WebGraphLikeParams p;
  p.chain_length = 50;
  p.community_size = 64;
  const EdgeList g = webgraph_like(p);
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  Depth max_depth = 0;
  for (const Depth d : dist) max_depth = std::max(max_depth, d);
  // BFS must walk the community chain: depth at least ~chain length.
  EXPECT_GE(max_depth, 49);
}

TEST(WebGraphLike, MostVerticesReachable) {
  WebGraphLikeParams p;
  p.chain_length = 10;
  p.community_size = 128;
  const EdgeList g = webgraph_like(p);
  const auto dist = baseline::serial_bfs(build_host_csr(g), 0);
  std::uint64_t reached = 0;
  for (const Depth d : dist) reached += d != kUnvisited ? 1 : 0;
  EXPECT_GT(static_cast<double>(reached) / static_cast<double>(g.num_vertices),
            0.95);
}

}  // namespace
}  // namespace dsbfs::graph
