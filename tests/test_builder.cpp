#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::graph {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

TEST(Builder, BasicInvariants) {
  const EdgeList g = rmat_graph500({.scale = 11, .seed = 2});
  const DistributedGraph dg = build_distributed(g, spec_of(2, 2), 32);
  EXPECT_EQ(dg.num_vertices(), g.num_vertices);
  EXPECT_EQ(dg.num_edges(), g.size());
  EXPECT_EQ(dg.threshold(), 32u);
  EXPECT_EQ(dg.num_locals(), 4u);
  EXPECT_EQ(dg.enn() + dg.end() + dg.edn() + dg.edd(), g.size());
  // Edges preserved across all local CSRs.
  std::uint64_t stored = 0;
  for (int gpu = 0; gpu < 4; ++gpu) {
    const LocalGraph& lg = dg.local(gpu);
    stored += lg.nn().num_edges() + lg.nd().num_edges() + lg.dn().num_edges() +
              lg.dd().num_edges();
  }
  EXPECT_EQ(stored, g.size());
}

TEST(Builder, Table1FormulaMatchesActualStorage) {
  // Table I: total = 8n + 8dp + 4m + 4|Enn| bytes.  Our CSRs have one extra
  // offset entry per subgraph per GPU (the +1 sentinel), a negligible
  // difference the test bounds tightly.
  const EdgeList g = rmat_graph500({.scale = 12, .seed = 3});
  const DistributedGraph dg = build_distributed(g, spec_of(2, 2), 32);
  const std::uint64_t actual = dg.total_subgraph_bytes();
  const std::uint64_t predicted = dg.table1_predicted_bytes();
  const std::uint64_t sentinel_slack = 16 * 4 * 4;  // 4 subgraphs x 4 GPUs
  EXPECT_LE(actual, predicted + sentinel_slack);
  EXPECT_GT(actual, predicted - predicted / 8);
}

TEST(Builder, MemoryBeatsEdgeListAtSuitableThreshold) {
  // Section III-C: about one third of the 16m-byte edge list.
  const EdgeList g = rmat_graph500({.scale = 14, .seed = 4});
  const sim::ClusterSpec spec = spec_of(2, 2);
  const std::uint32_t th = 24;  // suitable range for this scale
  const DistributedGraph dg = build_distributed(g, spec, th);
  const double ratio = static_cast<double>(dg.total_subgraph_bytes()) /
                       static_cast<double>(g.storage_bytes());
  EXPECT_LT(ratio, 0.5);
  // And a little more than half of plain CSR (8n + 8m).
  const double vs_csr =
      static_cast<double>(dg.total_subgraph_bytes()) /
      static_cast<double>(8 * g.num_vertices + 8 * g.size());
  EXPECT_LT(vs_csr, 0.85);
}

TEST(Builder, RegistersOnCluster) {
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 5});
  const sim::ClusterSpec spec = spec_of(1, 2);
  sim::Cluster cluster(spec);
  const DistributedGraph dg = build_distributed(g, spec, 16, &cluster);
  for (int gpu = 0; gpu < 2; ++gpu) {
    EXPECT_EQ(cluster.device(gpu).allocated_bytes(),
              dg.local(gpu).memory_usage().total_bytes());
  }
}

TEST(Builder, SingleGpuDegenerateCase) {
  const EdgeList g = path_graph(50);
  const DistributedGraph dg = build_distributed(g, spec_of(1, 1), 4);
  EXPECT_EQ(dg.num_locals(), 1u);
  EXPECT_EQ(dg.local(0).num_local_normals(), 50u);
  EXPECT_EQ(dg.enn(), g.size());  // path has max degree 2 < TH: all nn
  EXPECT_EQ(dg.num_delegates(), 0u);
}

TEST(Builder, ZeroThresholdMakesEverythingDelegate) {
  const EdgeList g = cycle_graph(32);
  const DistributedGraph dg = build_distributed(g, spec_of(2, 1), 0);
  EXPECT_EQ(dg.num_delegates(), 32u);
  EXPECT_EQ(dg.enn(), 0u);
  EXPECT_EQ(dg.end(), 0u);
  EXPECT_EQ(dg.edd(), g.size());
}

TEST(Builder, DegreesExposed) {
  const EdgeList g = star_graph(16);
  const DistributedGraph dg = build_distributed(g, spec_of(2, 1), 4);
  EXPECT_EQ(dg.degrees()[0], 15u);
  EXPECT_EQ(dg.degrees()[5], 1u);
  EXPECT_EQ(dg.num_delegates(), 1u);
  EXPECT_TRUE(dg.delegates().is_delegate(0));
}

}  // namespace
}  // namespace dsbfs::graph
