#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

graph::DistributedGraph small_graph(sim::ClusterSpec spec) {
  return graph::build_distributed(
      graph::rmat_graph500({.scale = 9, .seed = 61}), spec, 16);
}

std::vector<std::vector<sim::GpuIterationCounters>> synthetic_histories(
    int gpus, int iterations, bool delegate_on_even) {
  std::vector<std::vector<sim::GpuIterationCounters>> h(
      static_cast<std::size_t>(gpus));
  for (int g = 0; g < gpus; ++g) {
    for (int it = 0; it < iterations; ++it) {
      sim::GpuIterationCounters c;
      c.dd.edges = 100;
      c.dd.launched = true;
      c.nn.edges = 50;
      c.nn.vertices = 10;
      c.nn.launched = true;
      c.bin_vertices = 10;
      c.send_bytes_remote = 40;
      c.local_all2all_bytes = 8;
      c.delegate_update = delegate_on_even && (it % 2 == 0);
      h[static_cast<std::size_t>(g)].push_back(c);
    }
  }
  return h;
}

TEST(Metrics, AggregatesTotals) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const auto dg = small_graph(spec);
  const BfsOptions options;
  auto m = assemble_metrics(dg, options, synthetic_histories(4, 6, true),
                            /*measured_ms=*/10.0);
  EXPECT_EQ(m.iterations, 6);
  EXPECT_EQ(m.delegate_reduce_iterations, 3);  // even iterations only
  EXPECT_EQ(m.edges_traversed, 4u * 6 * 150);
  EXPECT_EQ(m.exchange_remote_bytes, 4u * 6 * 40);
  EXPECT_EQ(m.exchange_local_bytes, 4u * 6 * 8);
  EXPECT_EQ(m.teps_edges, dg.num_edges() / 2);
  EXPECT_DOUBLE_EQ(m.measured_ms, 10.0);
  EXPECT_GT(m.measured_gteps, 0.0);
}

TEST(Metrics, MaskVolumeUsesPaperFormula) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const auto dg = small_graph(spec);
  auto m = assemble_metrics(dg, {}, synthetic_histories(4, 4, true), 1.0);
  const std::uint64_t d_bytes = (dg.num_delegates() + 7) / 8;
  EXPECT_EQ(m.mask_reduce_bytes, 2 * d_bytes * 2 * 2);  // 2 ranks, S' = 2
}

TEST(Metrics, PerIterationTraceToggle) {
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 2;
  const auto dg = small_graph(spec);
  BfsOptions with_trace;
  with_trace.collect_per_iteration = true;
  auto m = assemble_metrics(dg, with_trace, synthetic_histories(2, 5, false),
                            1.0);
  EXPECT_EQ(m.per_iteration.size(), 5u);
  BfsOptions without;
  without.collect_per_iteration = false;
  m = assemble_metrics(dg, without, synthetic_histories(2, 5, false), 1.0);
  EXPECT_TRUE(m.per_iteration.empty());
}

TEST(Metrics, ModeledBreakdownPopulated) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const auto dg = small_graph(spec);
  auto m = assemble_metrics(dg, {}, synthetic_histories(2, 8, true), 1.0);
  EXPECT_GT(m.modeled_ms, 0.0);
  EXPECT_GT(m.modeled_gteps, 0.0);
  EXPECT_GT(m.modeled.computation_ms, 0.0);
  EXPECT_GT(m.modeled.delegate_reduce_ms, 0.0);
  EXPECT_DOUBLE_EQ(m.modeled.elapsed_ms, m.modeled_ms);
}

TEST(Metrics, CountersPreservedForReplay) {
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 2;
  const auto dg = small_graph(spec);
  BfsOptions options;
  options.reduce_mode = comm::ReduceMode::kNonBlocking;
  auto m = assemble_metrics(dg, options, synthetic_histories(2, 3, true), 1.0);
  EXPECT_EQ(m.counters.iterations.size(), 3u);
  EXPECT_EQ(m.counters.spec.total_gpus(), 2);
  EXPECT_FALSE(m.counters.blocking_reduce);
  EXPECT_EQ(m.counters.delegate_mask_bytes, (dg.num_delegates() + 7) / 8);
  // A PerfModel replay of the preserved counters equals the stored result.
  const sim::PerfModel model{sim::DeviceModel{options.device_model},
                             sim::NetModel{options.net_model}};
  const auto replayed = model.replay(m.counters);
  EXPECT_DOUBLE_EQ(replayed.elapsed_ms, m.modeled_ms);
}

TEST(Metrics, EmptyHistoriesProduceZeroRun) {
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  const auto dg = small_graph(spec);
  std::vector<std::vector<sim::GpuIterationCounters>> empty(1);
  auto m = assemble_metrics(dg, {}, std::move(empty), 0.5);
  EXPECT_EQ(m.iterations, 0);
  EXPECT_EQ(m.edges_traversed, 0u);
}

}  // namespace
}  // namespace dsbfs::core
