#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "baseline/host_apps.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "util/hash.hpp"

namespace dsbfs::graph {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

/// Unordered-pair -> weight map of a weighted edge list (the ground truth
/// every distributed copy of an edge must agree with).
std::map<std::pair<VertexId, VertexId>, std::uint32_t> pair_weights(
    const EdgeList& g) {
  std::map<std::pair<VertexId, VertexId>, std::uint32_t> out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const VertexId a = std::min(g.src[i], g.dst[i]);
    const VertexId b = std::max(g.src[i], g.dst[i]);
    const auto [it, inserted] = out.emplace(std::make_pair(a, b), g.weights[i]);
    EXPECT_EQ(it->second, g.weights[i])
        << "edge list weight inconsistent for pair " << a << "," << b;
  }
  return out;
}

TEST(WeightedEdgeList, AddWeightedAndStorageBytes) {
  EdgeList g;
  g.num_vertices = 4;
  EXPECT_FALSE(g.weighted());
  g.add_weighted(0, 1, 7);
  g.add_weighted(1, 2, 3);
  EXPECT_TRUE(g.weighted());
  EXPECT_EQ(g.weights.size(), g.size());
  EXPECT_EQ(g.storage_bytes(), 2u * 16 + 2u * 4);
}

TEST(WeightedEdgeList, MakeSymmetricMirrorsWeights) {
  EdgeList g;
  g.num_vertices = 5;
  g.add_weighted(0, 1, 9);
  g.add_weighted(2, 3, 4);
  const EdgeList s = make_symmetric(g);
  ASSERT_EQ(s.size(), 4u);
  ASSERT_TRUE(s.weighted());
  // Forward copies then mirrored copies, weights preserved on both.
  EXPECT_EQ(s.weights[0], 9u);
  EXPECT_EQ(s.weights[1], 4u);
  EXPECT_EQ(s.weights[2], 9u);
  EXPECT_EQ(s.weights[3], 4u);
  EXPECT_EQ(s.src[2], 1u);
  EXPECT_EQ(s.dst[2], 0u);
}

TEST(WeightedEdgeList, MakeSymmetricRejectsMixedAddCalls) {
  EdgeList g;
  g.num_vertices = 3;
  g.add_weighted(0, 1, 5);
  g.add(1, 2);  // mixing styles: one weight for two edges
  EXPECT_THROW(make_symmetric(g), std::invalid_argument);
}

TEST(WeightedSerialSssp, RejectsMismatchedWeightSpan) {
  const WeightedHostCsr plain = build_weighted_host_csr(path_graph(5));
  ASSERT_TRUE(plain.weights.empty());
  EXPECT_THROW(baseline::serial_sssp(
                   plain.csr, std::span<const std::uint32_t>(plain.weights), 0),
               std::invalid_argument);
}

TEST(WeightedEdgeList, AssignUniformWeightsIsPairConsistentAndInRange) {
  EdgeList g = rmat_graph500({.scale = 8, .seed = 11});
  assign_uniform_weights(g, 12, 5);
  ASSERT_EQ(g.weights.size(), g.size());
  for (const std::uint32_t w : g.weights) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 12u);
  }
  // Symmetric doubles and parallel edges must agree (checked inside).
  const auto map = pair_weights(g);
  EXPECT_FALSE(map.empty());
  // A different seed decorrelates from the hashed fallback.
  EdgeList g2 = rmat_graph500({.scale = 8, .seed = 11});
  assign_uniform_weights(g2, 12, 6);
  EXPECT_NE(g.weights, g2.weights);
  EXPECT_THROW(assign_uniform_weights(g, 0, 1), std::invalid_argument);
}

TEST(WeightedHostCsrTest, WeightsFollowEdgesThroughTheCountingSort) {
  EdgeList g = erdos_renyi(64, 400, 3);
  assign_uniform_weights(g, 9, 17);
  const auto map = pair_weights(g);
  const WeightedHostCsr host = build_weighted_host_csr(g);
  ASSERT_EQ(host.weights.size(), host.csr.num_edges());
  for (VertexId u = 0; u < host.csr.num_rows(); ++u) {
    for (std::uint64_t e = host.csr.row_begin(u); e < host.csr.row_end(u);
         ++e) {
      const VertexId v = host.csr.col(e);
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      ASSERT_EQ(host.weights[e], map.at(key)) << "edge " << u << "->" << v;
    }
  }
  // Unweighted input degrades to an empty weight array.
  const WeightedHostCsr plain = build_weighted_host_csr(erdos_renyi(16, 40, 4));
  EXPECT_TRUE(plain.weights.empty());
  EXPECT_EQ(plain.csr.num_edges(), 80u);
}

TEST(WeightedSerialSssp, PathDistancesAreStoredWeightPrefixSums) {
  EdgeList g = path_graph(10);
  assign_uniform_weights(g, 31, 2);
  const WeightedHostCsr host = build_weighted_host_csr(g);
  const auto dist = baseline::serial_sssp(
      host.csr, std::span<const std::uint32_t>(host.weights), 0);
  const auto map = pair_weights(g);
  std::uint64_t acc = 0;
  EXPECT_EQ(dist[0], 0u);
  for (VertexId v = 1; v < 10; ++v) {
    acc += map.at({v - 1, v});
    EXPECT_EQ(dist[v], acc) << v;
  }
}

/// The distributor round-trip: every local edge of every GPU's every
/// subgraph must carry the weight of its original endpoint pair -- normal
/// edges land on the owning rank with their weight, and every replica-side
/// view of a delegate edge (nd on the normal's owner, dn/dd wherever
/// Algorithm 1 routed it) sees the consistent pair weight.
TEST(WeightedDistribution, WeightsLandOnTheOwningGpuForEverySubgraph) {
  EdgeList g = rmat_graph500({.scale = 8, .seed = 23});
  assign_uniform_weights(g, 15, 9);
  const auto map = pair_weights(g);
  const auto spec = spec_of(2, 2);
  const DistributedGraph dg = build_distributed(g, spec, 16);
  ASSERT_TRUE(dg.weighted());
  const DelegateInfo& delegates = dg.delegates();

  std::uint64_t checked = 0;
  for (int gi = 0; gi < spec.total_gpus(); ++gi) {
    const LocalGraph& lg = dg.local(gi);
    ASSERT_TRUE(lg.weighted());
    const sim::GpuCoord me = spec.coord_of(gi);
    const auto global_of = [&](LocalId v) {
      return spec.global_vertex(me.rank, me.gpu, v);
    };
    const auto expect_weight = [&](VertexId u, VertexId v, std::uint32_t w) {
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      ASSERT_EQ(w, map.at(key)) << "gpu " << gi << " edge " << u << "->" << v;
      ++checked;
    };

    ASSERT_EQ(lg.nn_weights().size(), lg.nn().num_edges());
    ASSERT_EQ(lg.nd_weights().size(), lg.nd().num_edges());
    ASSERT_EQ(lg.dn_weights().size(), lg.dn().num_edges());
    ASSERT_EQ(lg.dd_weights().size(), lg.dd().num_edges());
    EXPECT_EQ(lg.memory_usage().weight_bytes,
              4 * (lg.nn().num_edges() + lg.nd().num_edges() +
                   lg.dn().num_edges() + lg.dd().num_edges()));

    for (std::uint64_t v = 0; v < lg.num_local_normals(); ++v) {
      for (std::uint64_t e = lg.nn().row_begin(v); e < lg.nn().row_end(v); ++e) {
        expect_weight(global_of(static_cast<LocalId>(v)), lg.nn().col(e),
                      lg.nn_weights()[e]);
      }
      for (std::uint64_t e = lg.nd().row_begin(v); e < lg.nd().row_end(v); ++e) {
        expect_weight(global_of(static_cast<LocalId>(v)),
                      delegates.vertex_of(lg.nd().col(e)), lg.nd_weights()[e]);
      }
    }
    for (LocalId t = 0; t < dg.num_delegates(); ++t) {
      for (std::uint64_t e = lg.dn().row_begin(t); e < lg.dn().row_end(t); ++e) {
        expect_weight(delegates.vertex_of(t), global_of(lg.dn().col(e)),
                      lg.dn_weights()[e]);
      }
      for (std::uint64_t e = lg.dd().row_begin(t); e < lg.dd().row_end(t); ++e) {
        expect_weight(delegates.vertex_of(t), delegates.vertex_of(lg.dd().col(e)),
                      lg.dd_weights()[e]);
      }
    }
  }
  // Every directed edge went to exactly one GPU and was checked there.
  EXPECT_EQ(checked, g.size());
}

TEST(WeightedDistribution, UnweightedGraphsStayWeightFree) {
  const EdgeList g = rmat_graph500({.scale = 7, .seed = 2});
  const auto spec = spec_of(2, 1);
  const DistributedGraph dg = build_distributed(g, spec, 8);
  EXPECT_FALSE(dg.weighted());
  for (int gi = 0; gi < spec.total_gpus(); ++gi) {
    EXPECT_FALSE(dg.local(gi).weighted());
    EXPECT_TRUE(dg.local(gi).nn_weights().empty());
    EXPECT_EQ(dg.local(gi).memory_usage().weight_bytes, 0u);
  }
}

TEST(WeightedDistribution, RejectsMismatchedWeightArray) {
  EdgeList g = path_graph(8);
  g.weights.assign(3, 1);  // wrong length: not one weight per directed edge
  EXPECT_THROW(build_distributed(g, spec_of(2, 1), 4), std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::graph
