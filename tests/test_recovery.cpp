// Checkpoint / rollback recovery: a run that loses a GPU mid-flight must
// finish with the bit-identical answer of a clean run, visibly charging the
// checkpoints it took, the rollback it performed and the iterations it
// replayed.  Covers the engine across its state shapes: BFS (GpuSnapshot),
// batched BFS at W = 64 (LaneSnapshot), delta-stepping SSSP and PageRank
// (value-typed snapshots).
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_bfs.hpp"
#include "core/batch_sssp.hpp"
#include "core/betweenness.hpp"
#include "core/bfs.hpp"
#include "core/delta_sssp.hpp"
#include "core/pagerank.hpp"
#include "core/query_scheduler.hpp"
#include "graph/builder.hpp"
#include "graph/rmat.hpp"
#include "sim/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"

namespace dsbfs {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.num_ranks = 2;
    spec_.gpus_per_rank = 2;
    edges_ = graph::rmat_graph500({.scale = 8, .seed = 5});
    dg_ = graph::build_distributed(edges_, spec_, 16);
  }

  /// A schedule killing GPU 1 as it enters iteration 2.  No cadence is set,
  /// so the engine must force per-iteration checkpointing on its own.
  static sim::ResilienceOptions kill_gpu1_at2() {
    sim::ResilienceOptions r;
    r.faults.fail_gpu = 1;
    r.faults.fail_iteration = 2;
    return r;
  }

  static void expect_recovered(const sim::FaultReport& f) {
    EXPECT_EQ(f.rollbacks, 1);
    EXPECT_GE(f.replayed_iterations, 1);
    EXPECT_GE(f.checkpoints, 1);
    EXPECT_GT(f.checkpoint_bytes, 0u);
    EXPECT_GT(f.recovery_ns, 0u);
    ASSERT_EQ(f.events.size(), 1u);
    EXPECT_EQ(f.events[0].kind, sim::FaultKind::kGpuFailure);
    EXPECT_EQ(f.events[0].from, 1);
    EXPECT_EQ(f.events[0].attempt, 2u);
  }

  sim::ClusterSpec spec_;
  graph::EdgeList edges_;
  graph::DistributedGraph dg_;
};

TEST_F(RecoveryTest, BfsSurvivesGpuFailureBitExact) {
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  core::BfsOptions options;
  options.resilience = kill_gpu1_at2();
  const core::BfsResult hurt =
      core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_EQ(hurt.distances, clean.distances);
  // BFS metrics count executed rounds, so the replayed window shows up on
  // top of the clean iteration count.
  EXPECT_EQ(hurt.metrics.iterations,
            clean.metrics.iterations + hurt.metrics.fault.replayed_iterations);
  expect_recovered(hurt.metrics.fault);
  // The recovery charge and the replayed rounds must push the modeled time
  // above the clean run's.
  EXPECT_GT(hurt.metrics.modeled_ms, clean.metrics.modeled_ms);
}

TEST_F(RecoveryTest, BatchBfs64SurvivesGpuFailureBitExact) {
  sim::Cluster cluster(spec_);
  std::vector<VertexId> sources;
  {
    core::DistributedBatchBfs sampler(dg_, cluster);
    for (std::uint64_t k = 0; k < 64; ++k) {
      sources.push_back(sampler.sample_source(k));
    }
  }
  const core::BatchBfsResult clean =
      core::DistributedBatchBfs(dg_, cluster).run(sources);
  ASSERT_EQ(clean.lane_bits, 64);

  core::BatchBfsOptions options;
  options.resilience = kill_gpu1_at2();
  const core::BatchBfsResult hurt =
      core::DistributedBatchBfs(dg_, cluster, options).run(sources);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.metrics.iterations,
            clean.metrics.iterations + hurt.metrics.fault.replayed_iterations);
  expect_recovered(hurt.metrics.fault);
}

TEST_F(RecoveryTest, DeltaSsspSurvivesGpuFailureBitExact) {
  sim::Cluster cluster(spec_);
  const core::DeltaSsspResult clean =
      core::DistributedDeltaSssp(dg_, cluster).run(3);

  core::DeltaSsspOptions options;
  options.resilience = kill_gpu1_at2();
  const core::DeltaSsspResult hurt =
      core::DistributedDeltaSssp(dg_, cluster, options).run(3);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.iterations, clean.iterations);
  EXPECT_EQ(hurt.buckets_processed, clean.buckets_processed);
  expect_recovered(hurt.fault);
}

TEST_F(RecoveryTest, BatchSsspSurvivesGpuFailureBitExact) {
  sim::Cluster cluster(spec_);
  const std::vector<VertexId> sources = {3, 11, 42, 7, 100, 1, 9, 63};
  const core::BatchSsspResult clean =
      core::DistributedBatchSssp(dg_, cluster).run(sources);

  core::BatchSsspOptions options;
  options.resilience = kill_gpu1_at2();
  const core::BatchSsspResult hurt =
      core::DistributedBatchSssp(dg_, cluster, options).run(sources);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.iterations, clean.iterations);
  EXPECT_EQ(hurt.buckets_processed, clean.buckets_processed);
  expect_recovered(hurt.fault);
}

TEST_F(RecoveryTest, BetweennessSurvivesGpuFailureInBothRunsBitExact) {
  // The fault schedule applies to both composed engine runs: GPU 1 dies
  // entering iteration 2 of the forward sweep AND of the reverse pass.
  // Scores must still match the clean run's doubles bit for bit.
  sim::Cluster cluster(spec_);
  const std::vector<VertexId> sources = {3, 11, 42, 7};
  const core::BetweennessResult clean =
      core::BetweennessCentrality(dg_, cluster).run(sources);

  core::BetweennessOptions options;
  options.resilience = kill_gpu1_at2();
  const core::BetweennessResult hurt =
      core::BetweennessCentrality(dg_, cluster, options).run(sources);

  EXPECT_EQ(hurt.scores, clean.scores);
  EXPECT_EQ(hurt.forward_iterations, clean.forward_iterations);
  EXPECT_EQ(hurt.reverse_iterations, clean.reverse_iterations);
  EXPECT_EQ(hurt.max_depth, clean.max_depth);
  expect_recovered(hurt.forward_fault);
  expect_recovered(hurt.reverse_fault);
}

TEST_F(RecoveryTest, PagerankSurvivesGpuFailureBitExact) {
  sim::Cluster cluster(spec_);
  const core::PagerankResult clean =
      core::DistributedPagerank(dg_, cluster).run();

  core::PagerankOptions options;
  options.resilience = kill_gpu1_at2();
  const core::PagerankResult hurt =
      core::DistributedPagerank(dg_, cluster, options).run();

  // Bit-identical doubles: rollback replays the exact FP operation sequence.
  EXPECT_EQ(hurt.ranks, clean.ranks);
  EXPECT_EQ(hurt.iterations, clean.iterations);
  expect_recovered(hurt.fault);
}

TEST_F(RecoveryTest, QuerySchedulerSurvivesGpuFailureBitExact) {
  // The serving tier under a mid-run device loss: the rollback must replay
  // the in-flight lanes (and their retire/admit boundaries) without
  // re-answering already-retired queries differently -- the replicated
  // scheduler core is part of the checkpoint, so the logical schedule of a
  // hurt run is the clean run's, bit for bit; only the modeled clock pays.
  sim::Cluster cluster(spec_);
  core::QueryScheduler sampler(dg_, cluster, {.width = 8});
  const std::vector<core::QueryArrival> trace = core::make_arrival_trace(
      dg_, {.queries = 12, .rate = 2.0,
            .pattern = core::ArrivalPattern::kUniform, .seed = 7});
  const core::SchedulerOutcome clean = sampler.run(trace);

  core::SchedulerOptions options;
  options.width = 8;
  options.resilience = kill_gpu1_at2();
  core::QueryScheduler hurt_scheduler(dg_, cluster, options);
  const core::SchedulerOutcome hurt = hurt_scheduler.run(trace);

  ASSERT_EQ(hurt.queries.size(), clean.queries.size());
  for (std::size_t i = 0; i < clean.queries.size(); ++i) {
    EXPECT_EQ(hurt.queries[i].distances, clean.queries[i].distances)
        << "query " << i;
    EXPECT_EQ(hurt.queries[i].lane, clean.queries[i].lane) << "query " << i;
    EXPECT_EQ(hurt.queries[i].admit_iteration, clean.queries[i].admit_iteration)
        << "query " << i;
    EXPECT_EQ(hurt.queries[i].retire_iteration,
              clean.queries[i].retire_iteration)
        << "query " << i;
  }
  ASSERT_EQ(hurt.events.size(), clean.events.size());
  for (std::size_t i = 0; i < clean.events.size(); ++i) {
    EXPECT_EQ(hurt.events[i].kind, clean.events[i].kind);
    EXPECT_EQ(hurt.events[i].iteration, clean.events[i].iteration);
    EXPECT_EQ(hurt.events[i].lane, clean.events[i].lane);
    EXPECT_EQ(hurt.events[i].query, clean.events[i].query);
  }
  EXPECT_EQ(hurt.metrics.run.iterations,
            clean.metrics.run.iterations +
                hurt.metrics.run.fault.replayed_iterations);
  expect_recovered(hurt.metrics.run.fault);
  EXPECT_GT(hurt.metrics.modeled_ms, clean.metrics.modeled_ms);
  EXPECT_LT(hurt.metrics.queries_per_sec, clean.metrics.queries_per_sec);
}

TEST_F(RecoveryTest, CadenceBoundsTheReplayWindow) {
  // With checkpoints every 2 iterations and the failure at iteration 3, the
  // rollback lands on the iteration-2 snapshot: exactly one iteration is
  // replayed per GPU.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);
  ASSERT_GT(clean.metrics.iterations, 3);

  core::BfsOptions options;
  options.resilience.faults.fail_gpu = 2;
  options.resilience.faults.fail_iteration = 3;
  options.resilience.checkpoint_interval = 2;
  const core::BfsResult hurt =
      core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.metrics.fault.rollbacks, 1);
  EXPECT_EQ(hurt.metrics.fault.replayed_iterations, 1);
}

TEST_F(RecoveryTest, CheckpointingAloneChangesNothingButTheCharge) {
  // Cadence without any fault: the answer and the iteration structure must
  // be untouched; only the checkpoint accounting may appear.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  core::BfsOptions options;
  options.resilience.checkpoint_interval = 2;
  const core::BfsResult ckpt =
      core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_EQ(ckpt.distances, clean.distances);
  EXPECT_EQ(ckpt.metrics.iterations, clean.metrics.iterations);
  EXPECT_EQ(ckpt.metrics.exchange_remote_bytes,
            clean.metrics.exchange_remote_bytes);
  EXPECT_EQ(ckpt.metrics.fault.rollbacks, 0);
  EXPECT_EQ(ckpt.metrics.fault.replayed_iterations, 0);
  EXPECT_GE(ckpt.metrics.fault.checkpoints, spec_.total_gpus());
  EXPECT_GT(ckpt.metrics.fault.checkpoint_bytes, 0u);
}

TEST_F(RecoveryTest, TransientStallIsChargedNotRecovered) {
  // A straggler GPU costs time but neither rolls back nor changes anything.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  core::BfsOptions options;
  options.resilience.faults.stall_gpu = 1;
  options.resilience.faults.stall_iteration = 1;
  options.resilience.faults.stall_ns = 2'000'000;
  const core::BfsResult hurt =
      core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.metrics.iterations, clean.metrics.iterations);
  EXPECT_EQ(hurt.metrics.fault.rollbacks, 0);
  ASSERT_EQ(hurt.metrics.fault.events.size(), 1u);
  EXPECT_EQ(hurt.metrics.fault.events[0].kind, sim::FaultKind::kStall);
  EXPECT_GT(hurt.metrics.modeled_ms, clean.metrics.modeled_ms);
}

TEST_F(RecoveryTest, BfsSurvivesGpuFailureUnderEveryExchangeTopology) {
  // Chaos x topology: the rollback path must restore multi-hop exchange
  // rounds exactly -- the replayed hops re-aggregate, re-bin and re-merge,
  // and the answer still matches a clean flat run bit for bit.  The 2x2
  // spec at one rank per node gives two modeled nodes, legal for both
  // hierarchical and (power-of-two) butterfly routing.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  for (const auto topology : {sim::ExchangeTopology::kHierarchical,
                              sim::ExchangeTopology::kButterfly}) {
    core::BfsOptions options;
    options.exchange_topology = topology;
    options.resilience = kill_gpu1_at2();
    const core::BfsResult hurt =
        core::DistributedBfs(dg_, cluster, options).run(3);

    EXPECT_EQ(hurt.distances, clean.distances) << sim::to_string(topology);
    expect_recovered(hurt.metrics.fault);
    EXPECT_GT(hurt.metrics.modeled_ms, clean.metrics.modeled_ms)
        << sim::to_string(topology);
  }
}

TEST_F(RecoveryTest, DeltaSsspSurvivesGpuFailureUnderEveryExchangeTopology) {
  // Same gauntlet on the value-typed engine state (kMin update combine runs
  // through the per-hop re-coalesce).
  sim::Cluster cluster(spec_);
  const core::DeltaSsspResult clean =
      core::DistributedDeltaSssp(dg_, cluster).run(3);

  for (const auto topology : {sim::ExchangeTopology::kHierarchical,
                              sim::ExchangeTopology::kButterfly}) {
    core::DeltaSsspOptions options;
    options.exchange_topology = topology;
    options.resilience = kill_gpu1_at2();
    const core::DeltaSsspResult hurt =
        core::DistributedDeltaSssp(dg_, cluster, options).run(3);

    EXPECT_EQ(hurt.distances, clean.distances) << sim::to_string(topology);
    EXPECT_EQ(hurt.buckets_processed, clean.buckets_processed)
        << sim::to_string(topology);
    expect_recovered(hurt.fault);
  }
}

TEST_F(RecoveryTest, FaultsPlusFailureTogetherStayBitExact) {
  // The full gauntlet on one engine run: lossy wire *and* a device loss.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  core::BfsOptions options;
  options.resilience = kill_gpu1_at2();
  options.resilience.faults.drop_rate = 0.05;
  options.resilience.faults.corrupt_rate = 0.05;
  options.resilience.checkpoint_interval = 1;
  const core::BfsResult hurt =
      core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_EQ(hurt.distances, clean.distances);
  EXPECT_EQ(hurt.metrics.fault.rollbacks, 1);
  EXPECT_GT(hurt.metrics.fault.events.size(), 1u);
  EXPECT_GT(hurt.metrics.retries + hurt.metrics.corrupt_bins, 0u);
}

}  // namespace
}  // namespace dsbfs
