#include "sim/device.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dsbfs::sim {
namespace {

TEST(Device, TracksAllocations) {
  Device d(0, DeviceMemoryConfig{});
  d.allocate("graph", 1000);
  d.allocate("masks", 500);
  EXPECT_EQ(d.allocated_bytes(), 1500u);
  EXPECT_EQ(d.peak_bytes(), 1500u);
}

TEST(Device, ReleaseByLabel) {
  Device d(0, DeviceMemoryConfig{});
  d.allocate("a", 100);
  d.allocate("b", 200);
  d.release("a");
  EXPECT_EQ(d.allocated_bytes(), 200u);
  EXPECT_EQ(d.peak_bytes(), 300u);  // peak survives release
}

TEST(Device, ReleaseUnknownLabelIsNoop) {
  Device d(0, DeviceMemoryConfig{});
  d.allocate("a", 100);
  d.release("missing");
  EXPECT_EQ(d.allocated_bytes(), 100u);
}

TEST(Device, LabelAccumulates) {
  Device d(0, DeviceMemoryConfig{});
  d.allocate("x", 10);
  d.allocate("x", 20);
  EXPECT_EQ(d.allocations().at("x"), 30u);
  d.release("x");
  EXPECT_EQ(d.allocated_bytes(), 0u);
}

TEST(Device, SoftModeRecordsOverCapacity) {
  DeviceMemoryConfig cfg;
  cfg.capacity_bytes = 100;
  cfg.enforce = false;
  Device d(1, cfg);
  d.allocate("big", 150);
  EXPECT_TRUE(d.over_capacity());
  EXPECT_EQ(d.capacity_bytes(), 100u);
}

TEST(Device, EnforcedModeThrows) {
  DeviceMemoryConfig cfg;
  cfg.capacity_bytes = 100;
  cfg.enforce = true;
  Device d(2, cfg);
  d.allocate("ok", 60);
  EXPECT_THROW(d.allocate("too-much", 60), DeviceOutOfMemory);
}

TEST(Device, DefaultCapacityIsP100SixteenGb) {
  Device d(0, DeviceMemoryConfig{});
  EXPECT_EQ(d.capacity_bytes(), 16ULL << 30);
}

TEST(Device, ConcurrentAllocationAccounting) {
  Device d(0, DeviceMemoryConfig{});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&d, t] {
      for (int i = 0; i < 1000; ++i) {
        d.allocate("t" + std::to_string(t), 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(d.allocated_bytes(), 8u * 1000 * 8);
}

}  // namespace
}  // namespace dsbfs::sim
