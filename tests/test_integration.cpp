#include <gtest/gtest.h>

#include "baseline/bfs_1d.hpp"
#include "baseline/dobfs_single.hpp"
#include "baseline/serial_bfs.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/partition_stats.hpp"
#include "graph/rmat.hpp"

/// Cross-module integration tests at moderate scale: the full pipeline
/// (generate -> partition -> traverse -> validate -> model) with relations
/// between modules checked end to end.
namespace dsbfs {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static constexpr int kScale = 13;
  void SetUp() override {
    graph_ = graph::rmat_graph500({.scale = kScale, .seed = 101});
    spec_ = spec_of(2, 2);
    dg_ = graph::build_distributed(graph_, spec_, 32);
  }
  graph::EdgeList graph_;
  sim::ClusterSpec spec_;
  graph::DistributedGraph dg_;
};

TEST_F(IntegrationFixture, FullPipelineAllOptionsValidate) {
  sim::Cluster cluster(spec_);
  core::BfsOptions options;
  options.direction_optimized = true;
  options.local_all2all = true;
  options.uniquify = true;
  core::DistributedBfs bfs(dg_, cluster, options);
  const VertexId source = bfs.sample_source(3);
  const core::BfsResult r = bfs.run(source);

  const auto report = core::validate_distances(graph_, source, r.distances);
  ASSERT_TRUE(report.ok) << report.error;
  // Scale-13 RMAT reaches a large connected core.
  EXPECT_GT(report.reached, graph_.num_vertices / 4);

  const auto expected =
      baseline::serial_bfs(graph::build_host_csr(graph_), source);
  EXPECT_TRUE(core::validate_against_reference(r.distances, expected).ok);
}

TEST_F(IntegrationFixture, ExchangeVolumeBoundedByEnnFormula) {
  // Section V-B: total normal-exchange volume is at most 4 * |Enn| bytes
  // per BFS (each nn edge crosses at most once; duplicates at the receiver
  // come from multi-edges, already counted in Enn).
  sim::Cluster cluster(spec_);
  core::DistributedBfs bfs(dg_, cluster);
  const auto r = bfs.run(bfs.sample_source(1));
  EXPECT_LE(r.metrics.exchange_remote_bytes, 4 * dg_.enn());
  EXPECT_GT(r.metrics.exchange_remote_bytes, 0u);
}

TEST_F(IntegrationFixture, DistributedWorkloadTracksSingleNodeDobfs) {
  // The distributed DOBFS workload m' should be within a small factor of
  // the single-node DOBFS workload (paper Section IV-B: bounded by
  // m' + d*p*b).
  const auto csr = graph::build_host_csr(graph_);
  sim::Cluster cluster(spec_);
  core::DistributedBfs bfs(dg_, cluster);
  const VertexId source = bfs.sample_source(2);
  const auto distributed = bfs.run(source);
  const auto single = baseline::dobfs_single(csr, source);
  EXPECT_EQ(distributed.distances, single.distances);
  EXPECT_LT(distributed.metrics.edges_traversed,
            6 * single.edges_examined + 6 * graph_.num_vertices);
}

TEST_F(IntegrationFixture, AgreesWithBaseline1d) {
  sim::Cluster cluster(spec_);
  core::DistributedBfs bfs(dg_, cluster);
  const VertexId source = bfs.sample_source(4);
  const auto ours = bfs.run(source);
  const auto theirs = baseline::bfs_1d(graph_, spec_, source);
  EXPECT_EQ(ours.distances, theirs.distances);
}

TEST_F(IntegrationFixture, MemoryFitsSimulatedDevices) {
  // Register graph + BFS state on enforcing devices with ample budget; a
  // bookkeeping bug (double count / leak) would trip the checker.
  sim::DeviceMemoryConfig mem;
  mem.capacity_bytes = 2ULL << 30;
  mem.enforce = true;
  sim::Cluster cluster(spec_, mem);
  const auto dg = graph::build_distributed(graph_, spec_, 32, &cluster);
  core::DistributedBfs bfs(dg, cluster);
  EXPECT_NO_THROW(bfs.run(bfs.sample_source(0)));
  for (int g = 0; g < spec_.total_gpus(); ++g) {
    EXPECT_FALSE(cluster.device(g).over_capacity());
    // BFS state released after the run; graph remains.
    EXPECT_EQ(cluster.device(g).allocated_bytes(),
              dg.local(g).memory_usage().total_bytes());
  }
}

TEST_F(IntegrationFixture, SuggestedThresholdWorksEndToEnd) {
  const graph::PartitionStatsSweeper sweeper(graph_);
  const std::uint32_t th =
      graph::suggest_threshold(sweeper, spec_.total_gpus());
  EXPECT_GT(th, 0u);
  const auto dg = graph::build_distributed(graph_, spec_, th);
  // The policy bounds hold on the built graph.
  EXPECT_LE(static_cast<double>(dg.num_delegates()),
            4.0 * static_cast<double>(graph_.num_vertices) /
                spec_.total_gpus());
  sim::Cluster cluster(spec_);
  core::DistributedBfs bfs(dg, cluster);
  const auto r = bfs.run(bfs.sample_source(5));
  EXPECT_GT(r.metrics.iterations, 1);
}

TEST(Integration, WeakScalingModeledThroughputGrows) {
  // Mini weak-scaling study (the Fig. 9 mechanism): aggregate modeled GTEPS
  // must grow as graph and cluster grow together.  Tiny graphs understate
  // the effect (per-iteration overheads dominate, as on real GPUs), so the
  // growth bound here is conservative; the Fig. 9 bench runs the real curve.
  const auto run_at = [](int scale, int ranks, int gpus) {
    const auto g = graph::rmat_graph500({.scale = scale, .seed = 103});
    const auto spec = spec_of(ranks, gpus);
    const auto dg = graph::build_distributed(g, spec, 32);
    sim::Cluster cluster(spec);
    core::DistributedBfs bfs(dg, cluster);
    return bfs.run(bfs.sample_source(1)).metrics.modeled_gteps;
  };
  const double p1 = run_at(16, 1, 1);
  const double p4 = run_at(18, 2, 2);
  EXPECT_GT(p4, p1 * 1.5) << "p1=" << p1 << " p4=" << p4;
}

TEST(Integration, LongTailGraphDobfsNoWorseIterations) {
  // Section VI-D: on long-tail graphs DOBFS's direction decisions add
  // overhead without workload savings; both variants must stay correct and
  // iterate the full chain.
  graph::WebGraphLikeParams p;
  p.chain_length = 64;
  p.community_size = 64;
  const auto g = graph::webgraph_like(p);
  const auto spec = spec_of(2, 2);
  const auto dg = graph::build_distributed(g, spec, 16);
  sim::Cluster cluster(spec);

  core::BfsOptions plain;
  plain.direction_optimized = false;
  core::BfsOptions dopt;
  core::DistributedBfs bfs_plain(dg, cluster, plain);
  core::DistributedBfs bfs_do(dg, cluster, dopt);
  const auto r_plain = bfs_plain.run(0);
  const auto r_do = bfs_do.run(0);
  EXPECT_EQ(r_plain.distances, r_do.distances);
  EXPECT_GT(r_plain.metrics.iterations, 60);
}

TEST(Integration, FriendsterLikeEndToEnd) {
  const auto g = graph::friendster_like({.scale = 13, .seed = 7});
  const auto spec = spec_of(2, 2);
  const auto dg = graph::build_distributed(g, spec, 16);
  sim::Cluster cluster(spec);
  core::DistributedBfs bfs(dg, cluster);
  const VertexId source = bfs.sample_source(0);
  const auto r = bfs.run(source);
  const auto report = core::validate_distances(g, source, r.distances);
  EXPECT_TRUE(report.ok) << report.error;
}

}  // namespace
}  // namespace dsbfs
