#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

TEST(Validate, AcceptsCorrectDistances) {
  const graph::EdgeList g = graph::grid_graph(5, 5);
  const auto dist = baseline::serial_bfs(graph::build_host_csr(g), 0);
  const ValidationReport r = validate_distances(g, 0, dist);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.reached, 25u);
  EXPECT_EQ(r.max_depth, 8);
}

TEST(Validate, RejectsWrongSourceLevel) {
  const graph::EdgeList g = graph::path_graph(4);
  auto dist = baseline::serial_bfs(graph::build_host_csr(g), 0);
  dist[0] = 1;
  EXPECT_FALSE(validate_distances(g, 0, dist).ok);
}

TEST(Validate, RejectsLevelJumpAcrossEdge) {
  const graph::EdgeList g = graph::path_graph(5);
  auto dist = baseline::serial_bfs(graph::build_host_csr(g), 0);
  dist[3] = 5;  // neighbor of level-2 vertex can't be at 5
  const ValidationReport r = validate_distances(g, 0, dist);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("edge"), std::string::npos);
}

TEST(Validate, RejectsVisitedNextToUnvisited) {
  const graph::EdgeList g = graph::path_graph(5);
  auto dist = baseline::serial_bfs(graph::build_host_csr(g), 0);
  dist[4] = kUnvisited;  // reachable vertex marked unvisited
  EXPECT_FALSE(validate_distances(g, 0, dist).ok);
}

TEST(Validate, RejectsOrphanLevel) {
  // A vertex whose closest neighbor is 2 levels away (no valid parent).
  const graph::EdgeList g = graph::path_graph(5);
  auto dist = baseline::serial_bfs(graph::build_host_csr(g), 0);
  dist[3] = 4;  // neighbors at 2 and 4: |4-2|>1 caught as edge violation
  EXPECT_FALSE(validate_distances(g, 0, dist).ok);
}

TEST(Validate, RejectsMissingParent) {
  // Craft a subtler error: two adjacent vertices both shifted +1 keeps edge
  // consistency locally but orphans the earlier one from its real parent.
  graph::EdgeList g;
  g.num_vertices = 4;
  g.add(0, 1);
  g.add(1, 0);
  g.add(1, 2);
  g.add(2, 1);
  g.add(2, 3);
  g.add(3, 2);
  std::vector<Depth> dist{0, 1, 3, 4};  // 2 and 3 shifted by +1
  EXPECT_FALSE(validate_distances(g, 0, dist).ok);
}

TEST(Validate, RandomGraphRoundTrip) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 55});
  const auto csr = graph::build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  const auto dist = baseline::serial_bfs(csr, source);
  const ValidationReport r = validate_distances(g, source, dist);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.reached, 0u);
}

TEST(ValidateReference, ExactMatchRequired) {
  const std::vector<Depth> a{0, 1, 2, kUnvisited};
  EXPECT_TRUE(validate_against_reference(a, a).ok);
  std::vector<Depth> b = a;
  b[2] = 3;
  const ValidationReport r = validate_against_reference(b, a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("vertex 2"), std::string::npos);
}

TEST(ValidateReference, SizeMismatch) {
  const std::vector<Depth> a{0, 1};
  const std::vector<Depth> b{0, 1, 2};
  EXPECT_FALSE(validate_against_reference(a, b).ok);
}

TEST(ValidateReference, CountsReached) {
  const std::vector<Depth> a{0, 1, kUnvisited, 2};
  const ValidationReport r = validate_against_reference(a, a);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(r.max_depth, 2);
}

}  // namespace
}  // namespace dsbfs::core
