#include "comm/collectives.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace dsbfs::comm {
namespace {

/// Run `body(index)` on one thread per participant and join.
void run_participants(int n, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  for (int i = 0; i < n; ++i) threads.emplace_back([&body, i] { body(i); });
  for (auto& t : threads) t.join();
}

sim::ClusterSpec flat_spec(int n) {
  sim::ClusterSpec s;
  s.num_ranks = n;
  s.gpus_per_rank = 1;
  return s;
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, AllreduceSumCorrectEverywhere) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::uint64_t> results(static_cast<std::size_t>(n));
  run_participants(n, [&](int i) {
    results[static_cast<std::size_t>(i)] = allreduce_sum(
        t, everyone, i, static_cast<std::uint64_t>(i + 1), kTagUser);
  });
  const std::uint64_t expected =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n + 1) / 2;
  for (const auto r : results) EXPECT_EQ(r, expected);
}

TEST_P(CollectiveSizes, AllreduceOrWordsCorrectEverywhere) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<std::uint64_t>> words(
      static_cast<std::size_t>(n), std::vector<std::uint64_t>(3, 0));
  run_participants(n, [&](int i) {
    auto& w = words[static_cast<std::size_t>(i)];
    w[0] = 1ULL << i;
    w[2] = static_cast<std::uint64_t>(i % 2) << 63;
    allreduce_or_words(t, everyone, i, w, kTagUser);
  });
  std::uint64_t expect0 = 0;
  for (int i = 0; i < n; ++i) expect0 |= 1ULL << i;
  for (const auto& w : words) {
    EXPECT_EQ(w[0], expect0);
    EXPECT_EQ(w[1], 0u);
    EXPECT_EQ(w[2], n > 1 ? (1ULL << 63) : 0u);
  }
}

TEST_P(CollectiveSizes, AllreduceMax) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::uint64_t> results(static_cast<std::size_t>(n));
  run_participants(n, [&](int i) {
    results[static_cast<std::size_t>(i)] = allreduce_max(
        t, everyone, i, static_cast<std::uint64_t>((i * 37) % n + 1), kTagUser);
  });
  std::uint64_t expected = 0;
  for (int i = 0; i < n; ++i) {
    expected = std::max(expected, static_cast<std::uint64_t>((i * 37) % n + 1));
  }
  for (const auto r : results) EXPECT_EQ(r, expected);
}

TEST_P(CollectiveSizes, BroadcastFromRoot) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<std::uint64_t>> words(
      static_cast<std::size_t>(n), std::vector<std::uint64_t>(2, 0));
  run_participants(n, [&](int i) {
    auto& w = words[static_cast<std::size_t>(i)];
    if (i == 0) {
      w[0] = 7;
      w[1] = 9;
    }
    broadcast_words(t, everyone, i, w, kTagUser);
  });
  for (const auto& w : words) {
    EXPECT_EQ(w[0], 7u);
    EXPECT_EQ(w[1], 9u);
  }
}

TEST_P(CollectiveSizes, GatherConcatenatesInOrder) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::uint64_t> root_result;
  run_participants(n, [&](int i) {
    std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(i)};
    auto out = gather_words(t, everyone, i, mine, kTagUser);
    if (i == 0) root_result = std::move(out);
  });
  ASSERT_EQ(root_result.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(root_result[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i));
  }
}

TEST_P(CollectiveSizes, AllgatherVariableLengths) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<std::uint64_t>> results(static_cast<std::size_t>(n));
  run_participants(n, [&](int i) {
    // Participant i contributes i copies of its id (variable length).
    std::vector<std::uint64_t> mine(static_cast<std::size_t>(i),
                                    static_cast<std::uint64_t>(i));
    results[static_cast<std::size_t>(i)] =
        allgather_words(t, everyone, i, mine, kTagUser);
  });
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < n; ++i) {
    expected.insert(expected.end(), static_cast<std::size_t>(i),
                    static_cast<std::uint64_t>(i));
  }
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

INSTANTIATE_TEST_SUITE_P(ParticipantCounts, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16));

TEST_P(CollectiveSizes, AllreduceMinWords) {
  const int n = GetParam();
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<std::uint64_t>> words(
      static_cast<std::size_t>(n),
      std::vector<std::uint64_t>{0, 0, ~0ULL});
  run_participants(n, [&](int i) {
    auto& w = words[static_cast<std::size_t>(i)];
    w[0] = static_cast<std::uint64_t>(100 + (i * 7) % n);
    w[1] = static_cast<std::uint64_t>(i);
    // w[2] stays UINT64_MAX: the "no candidate" sentinel must survive when
    // everyone has it.
    allreduce_min_words(t, everyone, i, w, kTagUser);
  });
  std::uint64_t expect0 = ~0ULL;
  for (int i = 0; i < n; ++i) {
    expect0 = std::min(expect0, static_cast<std::uint64_t>(100 + (i * 7) % n));
  }
  for (const auto& w : words) {
    EXPECT_EQ(w[0], expect0);
    EXPECT_EQ(w[1], 0u);
    EXPECT_EQ(w[2], ~0ULL);
  }
}

TEST(Collectives, TreeMessageCountIsLinearNotQuadratic) {
  // A binomial tree allreduce sends 2*(n-1) messages (n-1 up, n-1 down),
  // not O(n^2) -- this is the paper's log-depth assumption materialized.
  const int n = 16;
  Transport t(flat_spec(n));
  std::vector<int> everyone(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) everyone[static_cast<std::size_t>(i)] = i;
  run_participants(n, [&](int i) {
    allreduce_sum(t, everyone, i, 1, kTagUser);
  });
  EXPECT_EQ(t.messages_sent(), 2u * (n - 1));
}

TEST(Collectives, SubsetParticipants) {
  // Only rank leaders participate in the paper's global phase; verify a
  // strict subset of endpoints can form a collective.
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 2;
  Transport t(spec);
  const std::vector<int> leaders{0, 2, 4};  // GPU0 of each rank
  std::vector<std::uint64_t> results(3);
  run_participants(3, [&](int i) {
    results[static_cast<std::size_t>(i)] =
        allreduce_sum(t, leaders, i, 10, kTagUser);
  });
  for (const auto r : results) EXPECT_EQ(r, 30u);
}

}  // namespace
}  // namespace dsbfs::comm
