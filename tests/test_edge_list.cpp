#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dsbfs::graph {
namespace {

TEST(EdgeList, AddAndSize) {
  EdgeList g;
  g.num_vertices = 4;
  g.add(0, 1);
  g.add(1, 2);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_FALSE(g.empty());
  EXPECT_EQ(g.storage_bytes(), 32u);  // 16 bytes per edge
}

TEST(EdgeList, MakeSymmetricDoublesEdges) {
  EdgeList g;
  g.num_vertices = 3;
  g.add(0, 1);
  g.add(1, 2);
  const EdgeList s = make_symmetric(g);
  EXPECT_EQ(s.size(), 4u);
  std::multiset<std::pair<VertexId, VertexId>> edges;
  for (std::size_t i = 0; i < s.size(); ++i) edges.insert({s.src[i], s.dst[i]});
  EXPECT_EQ(edges.count({0, 1}), 1u);
  EXPECT_EQ(edges.count({1, 0}), 1u);
  EXPECT_EQ(edges.count({1, 2}), 1u);
  EXPECT_EQ(edges.count({2, 1}), 1u);
}

TEST(EdgeList, MakeSymmetricPreservesSelfLoops) {
  EdgeList g;
  g.num_vertices = 2;
  g.add(1, 1);
  const EdgeList s = make_symmetric(g);
  EXPECT_EQ(s.size(), 2u);  // self loop doubled (as Graph500 generators do)
  EXPECT_EQ(s.src[0], 1u);
  EXPECT_EQ(s.dst[0], 1u);
}

TEST(EdgeList, SymmetricGraphHasSymmetricDegrees) {
  EdgeList g;
  g.num_vertices = 5;
  g.add(0, 1);
  g.add(0, 2);
  g.add(3, 4);
  const EdgeList s = make_symmetric(g);
  const auto deg = out_degrees(s);
  // In a symmetric graph out-degree == in-degree.
  EXPECT_EQ(deg[0], 2u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 1u);
  EXPECT_EQ(deg[4], 1u);
}

TEST(EdgeList, PermuteRelabelsConsistently) {
  EdgeList g;
  g.num_vertices = 8;
  g.add(0, 1);
  g.add(1, 2);
  g.add(2, 0);
  const util::VertexPermutation perm(3, 42);
  EdgeList h = g;
  permute_vertices(h, perm);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(h.src[i], perm(g.src[i]));
    EXPECT_EQ(h.dst[i], perm(g.dst[i]));
  }
}

TEST(EdgeList, PermutePreservesDegreeMultiset) {
  EdgeList g;
  g.num_vertices = 16;
  for (VertexId v = 1; v < 16; ++v) g.add(0, v);  // star: degree 15 + zeros
  const util::VertexPermutation perm(4, 9);
  EdgeList h = g;
  permute_vertices(h, perm);
  auto dg = out_degrees(g);
  auto dh = out_degrees(h);
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
}

TEST(EdgeList, PermuteRejectsSmallDomain) {
  EdgeList g;
  g.num_vertices = 100;
  const util::VertexPermutation perm(4, 1);  // domain 16 < 100
  EXPECT_THROW(permute_vertices(g, perm), std::invalid_argument);
}

TEST(EdgeList, OutDegreesEmptyGraph) {
  EdgeList g;
  g.num_vertices = 3;
  const auto deg = out_degrees(g);
  EXPECT_EQ(deg, (std::vector<std::uint32_t>{0, 0, 0}));
  EXPECT_EQ(count_zero_degree(deg), 3u);
}

TEST(EdgeList, CountZeroDegree) {
  EdgeList g;
  g.num_vertices = 4;
  g.add(0, 1);
  g.add(1, 0);
  const auto deg = out_degrees(g);
  EXPECT_EQ(count_zero_degree(deg), 2u);  // vertices 2 and 3
}

}  // namespace
}  // namespace dsbfs::graph
