#include "sim/perf_model.hpp"

#include <gtest/gtest.h>

namespace dsbfs::sim {
namespace {

/// Build a RunCounters with identical per-GPU work each iteration.
RunCounters uniform_run(ClusterSpec spec, int iterations,
                        std::uint64_t edges_per_kernel,
                        std::uint64_t exchange_bytes, bool delegate_updates,
                        bool blocking_reduce = true) {
  RunCounters run;
  run.spec = spec;
  run.delegate_mask_bytes = 1 << 16;
  run.blocking_reduce = blocking_reduce;
  run.iterations.resize(static_cast<std::size_t>(iterations));
  for (auto& ic : run.iterations) {
    ic.gpu.resize(static_cast<std::size_t>(spec.total_gpus()));
    for (auto& g : ic.gpu) {
      g.dprev_vertices = 100;
      g.nprev_vertices = 100;
      for (KernelCounters* k : {&g.dd, &g.dn, &g.nd, &g.nn}) {
        k->edges = edges_per_kernel;
        k->vertices = 100;
        k->launched = edges_per_kernel > 0;
      }
      g.bin_vertices = exchange_bytes / 4;
      g.send_bytes_remote = exchange_bytes;
      g.recv_bytes_remote = exchange_bytes;
      g.send_dest_ranks = spec.num_ranks - 1;
      g.delegate_update = delegate_updates;
    }
  }
  return run;
}

TEST(PerfModel, EmptyRunHasZeroTime) {
  PerfModel model;
  RunCounters run;
  run.spec = ClusterSpec{1, 1, 1};
  const ModeledBreakdown b = model.replay(run);
  EXPECT_DOUBLE_EQ(b.elapsed_ms, 0.0);
}

TEST(PerfModel, MoreWorkTakesLonger) {
  PerfModel model;
  const ClusterSpec spec{4, 2, 2};
  const auto small = model.replay(uniform_run(spec, 5, 1000, 1000, true));
  const auto large = model.replay(uniform_run(spec, 5, 1000000, 1000, true));
  EXPECT_GT(large.elapsed_ms, small.elapsed_ms);
  EXPECT_GT(large.computation_ms, small.computation_ms);
}

TEST(PerfModel, MoreIterationsTakeLonger) {
  PerfModel model;
  const ClusterSpec spec{2, 1, 2};
  const auto few = model.replay(uniform_run(spec, 3, 10000, 1000, true));
  const auto many = model.replay(uniform_run(spec, 30, 10000, 1000, true));
  EXPECT_GT(many.elapsed_ms, 5.0 * few.elapsed_ms);
}

TEST(PerfModel, OverlapKeepsElapsedNearCategorySums) {
  PerfModel model;
  const ClusterSpec spec{8, 2, 2};
  const auto b = model.replay(uniform_run(spec, 10, 500000, 1 << 20, true));
  const double sum = b.computation_ms + b.local_comm_ms + b.normal_exchange_ms +
                     b.delegate_reduce_ms + b.control_ms;
  // The paper: "the sum of all parts in one column is more than the elapsed
  // time of BFS, because different parts may overlap."  Cross-resource
  // dependency stalls (a receive waiting on the slowest sender) can push the
  // makespan marginally past the per-resource sums, hence the small slack.
  EXPECT_LT(b.elapsed_ms, sum * 1.10);
  // No single phase alone accounts for the elapsed time.
  EXPECT_GT(b.elapsed_ms, b.computation_ms);
  EXPECT_GT(b.elapsed_ms, b.normal_exchange_ms);
}

TEST(PerfModel, DelegatePathFreeWhenNoUpdates) {
  PerfModel model;
  const ClusterSpec spec{4, 1, 2};
  const auto with = model.replay(uniform_run(spec, 5, 10000, 1000, true));
  const auto without = model.replay(uniform_run(spec, 5, 10000, 1000, false));
  EXPECT_GT(with.delegate_reduce_ms, 0.0);
  EXPECT_DOUBLE_EQ(without.delegate_reduce_ms, 0.0);
  EXPECT_LT(without.elapsed_ms, with.elapsed_ms);
}

TEST(PerfModel, BlockingVsNonblockingReduceDiffer) {
  // Functional outputs are identical; modeled time must differ, and the
  // non-blocking variant must be chargeable as slower at many ranks
  // (Fig. 8's BR-vs-IR effect).
  PerfModel model;
  const ClusterSpec spec{16, 2, 2};  // 32 ranks
  const auto br = model.replay(uniform_run(spec, 8, 100000, 1 << 18, true, true));
  const auto ir = model.replay(uniform_run(spec, 8, 100000, 1 << 18, true, false));
  EXPECT_GT(ir.delegate_reduce_ms, br.delegate_reduce_ms);
}

TEST(PerfModel, SingleGpuHasNoNetworkTime) {
  PerfModel model;
  const ClusterSpec spec{1, 1, 1};
  auto run = uniform_run(spec, 5, 100000, 0, true);
  for (auto& ic : run.iterations) {
    for (auto& g : ic.gpu) {
      g.send_bytes_remote = 0;
      g.recv_bytes_remote = 0;
      g.send_dest_ranks = 0;
    }
  }
  const auto b = model.replay(run);
  EXPECT_DOUBLE_EQ(b.normal_exchange_ms, 0.0);
  EXPECT_DOUBLE_EQ(b.delegate_reduce_ms, 0.0);  // allreduce over 1 rank free
  EXPECT_GT(b.computation_ms, 0.0);
}

TEST(PerfModel, WeakScalingElapsedGrowsSlowly) {
  // Same per-GPU work, growing cluster: elapsed should grow roughly with
  // log(p) (delegate reduce) not linearly.
  PerfModel model;
  const auto t2 =
      model.replay(uniform_run(ClusterSpec{2, 1, 4}, 10, 200000, 1 << 18, true));
  const auto t16 =
      model.replay(uniform_run(ClusterSpec{16, 1, 4}, 10, 200000, 1 << 18, true));
  EXPECT_GT(t16.elapsed_ms, t2.elapsed_ms);
  EXPECT_LT(t16.elapsed_ms, 3.0 * t2.elapsed_ms);
}

TEST(PerfModel, IrBeatsBrAtFewRanksLosesAtMany) {
  // The Fig. 8 crossover: non-blocking reduction wins below ~8 nodes by
  // overlapping the normal exchange, and loses at scale because the
  // unoptimized MPI_Iallreduce costs more per round.
  PerfModel model;
  const auto elapsed = [&](int ranks, bool blocking) {
    // Heavy exchange alongside the reduce so overlap has something to hide.
    return model
        .replay(uniform_run(ClusterSpec{ranks, 1, 2}, 10, 50000, 1 << 21,
                            true, blocking))
        .elapsed_ms;
  };
  EXPECT_LT(elapsed(4, false), elapsed(4, true) * 1.02);   // IR competitive
  EXPECT_GT(elapsed(32, false), elapsed(32, true));        // BR wins at scale
}

TEST(PerfModel, DirectionDecisionsCostFixedOverheadPerIteration) {
  // Section VI-D's long-tail effect in the model: with DO flagged, each
  // iteration charges two extra kernel launches per previsit -- decisive
  // over many tiny iterations, negligible over few large ones.
  PerfModel model;
  const ClusterSpec spec{1, 1, 1};
  auto tiny = uniform_run(spec, 400, 10, 0, false);
  auto tiny_do = tiny;
  for (auto& ic : tiny_do.iterations) {
    for (auto& gc : ic.gpu) gc.direction_decisions = true;
  }
  const double plain = model.replay(tiny).elapsed_ms;
  const double with_do = model.replay(tiny_do).elapsed_ms;
  EXPECT_GT(with_do, plain * 1.2);

  auto large = uniform_run(spec, 8, 2000000, 0, false);
  auto large_do = large;
  for (auto& ic : large_do.iterations) {
    for (auto& gc : ic.gpu) gc.direction_decisions = true;
  }
  EXPECT_LT(model.replay(large_do).elapsed_ms,
            model.replay(large).elapsed_ms * 1.05);
}

TEST(PerfModel, HopTraceDrivesPerHopReplay) {
  // A run carrying multi-hop exchange traces charges each hop on its own
  // link class and reports the per-hop load; the byte-equivalent flat run
  // carries no hop breakdown.  Both exchange sections stay non-free.
  PerfModel model;
  const ClusterSpec spec{4, 2, 2};  // 2 nodes x 2 ranks x 2 GPUs
  auto flat = uniform_run(spec, 4, 10000, 1 << 20, false);

  auto hopped = flat;
  for (auto& ic : hopped.iterations) {
    for (auto& g : ic.gpu) {
      // Hierarchical shape: intra gather, one inter hop, intra scatter.
      g.hops = {
          {.hop = 0, .internode = false, .send_bytes = 1 << 19,
           .recv_bytes = 1 << 19, .partners = 3, .bins = 6, .records = 4096},
          {.hop = 1, .internode = true, .send_bytes = 1 << 20,
           .recv_bytes = 1 << 20, .partners = 1, .bins = 8, .records = 8192},
          {.hop = 2, .internode = false, .send_bytes = 1 << 19,
           .recv_bytes = 1 << 19, .partners = 3, .bins = 6, .records = 4096},
      };
      // The legacy counters hold the hop classes' totals (inter = remote,
      // intra = local), as the comm layer records them.
      g.send_bytes_remote = 1 << 20;
      g.recv_bytes_remote = 1 << 20;
      g.local_all2all_bytes = 2 * (1 << 19);
    }
  }

  const auto fb = model.replay(flat);
  const auto hb = model.replay(hopped);

  EXPECT_TRUE(fb.exchange_hops.empty());
  ASSERT_EQ(hb.exchange_hops.size(), 3u);
  // Intra hops accrue NVLink-only load, the inter hop NIC-only.
  EXPECT_GT(hb.exchange_hops[0].nvlink_ms, 0.0);
  EXPECT_DOUBLE_EQ(hb.exchange_hops[0].nic_ms, 0.0);
  EXPECT_GT(hb.exchange_hops[1].nic_ms, 0.0);
  EXPECT_GT(hb.exchange_hops[2].nvlink_ms, 0.0);
  EXPECT_DOUBLE_EQ(hb.exchange_hops[2].nic_ms, 0.0);
  EXPECT_GT(hb.elapsed_ms, 0.0);
  EXPECT_GT(hb.normal_exchange_ms, 0.0);
  EXPECT_GT(hb.local_comm_ms, 0.0);
}

TEST(PerfModel, BulkSynchronousHopsSlowerThanFlatAtFewNodes) {
  // At two nodes the hierarchical route pays aggregation latency (the intra
  // legs plus a barrier per hop) without cutting partner counts much: its
  // replay must not be cheaper than the byte-identical flat run.  This is
  // the modeled cost the 16-node crossover in the ablation amortizes.
  PerfModel model;
  const ClusterSpec spec{2, 2, 2};
  auto flat = uniform_run(spec, 4, 10000, 1 << 20, false);
  auto hopped = flat;
  for (auto& ic : hopped.iterations) {
    for (auto& g : ic.gpu) {
      g.hops = {
          {.hop = 0, .internode = false, .send_bytes = 1 << 19,
           .recv_bytes = 1 << 19, .partners = 3, .bins = 6, .records = 4096},
          {.hop = 1, .internode = true, .send_bytes = 1 << 20,
           .recv_bytes = 1 << 20, .partners = 1, .bins = 8, .records = 8192},
          {.hop = 2, .internode = false, .send_bytes = 1 << 19,
           .recv_bytes = 1 << 19, .partners = 3, .bins = 6, .records = 4096},
      };
      g.local_all2all_bytes = 2 * (1 << 19);
    }
  }
  EXPECT_GE(model.replay(hopped).elapsed_ms, model.replay(flat).elapsed_ms);
}

TEST(PerfModel, BackwardKernelsCheaper) {
  PerfModel model;
  const ClusterSpec spec{2, 1, 2};
  auto fw = uniform_run(spec, 5, 500000, 1000, false);
  auto bw = fw;
  for (auto& ic : bw.iterations) {
    for (auto& g : ic.gpu) {
      g.dd.backward = g.dn.backward = g.nd.backward = true;
    }
  }
  EXPECT_LT(model.replay(bw).computation_ms, model.replay(fw).computation_ms);
}

}  // namespace
}  // namespace dsbfs::sim
