#include "core/sssp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "baseline/host_apps.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "util/hash.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

SsspResult run_sssp(const graph::EdgeList& g, sim::ClusterSpec spec,
                    std::uint32_t th, VertexId source,
                    SsspOptions options = {}) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  DistributedSssp sssp(dg, cluster, options);
  return sssp.run(source);
}

void expect_matches_serial(const graph::EdgeList& g, sim::ClusterSpec spec,
                           std::uint32_t th, VertexId source) {
  const SsspResult r = run_sssp(g, spec, th, source);
  const auto expected =
      baseline::serial_sssp(graph::build_host_csr(g), source);
  ASSERT_EQ(r.distances.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(r.distances[v], expected[v])
        << "vertex " << v << " source " << source << " spec "
        << spec.to_string() << " th " << th;
  }
}

TEST(EdgeWeight, SymmetricAndInRange) {
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId v = 0; v < 50; ++v) {
      const std::uint32_t w = util::edge_weight(u, v, 15);
      EXPECT_EQ(w, util::edge_weight(v, u, 15));
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 15u);
    }
  }
}

TEST(EdgeWeight, SpreadsAcrossRange) {
  // The hash should hit every weight class over a few thousand edges.
  std::vector<int> seen(16, 0);
  for (VertexId u = 0; u < 100; ++u) {
    for (VertexId v = u + 1; v < 100; ++v) {
      ++seen[util::edge_weight(u, v, 15)];
    }
  }
  for (std::uint32_t w = 1; w <= 15; ++w) EXPECT_GT(seen[w], 0) << w;
}

TEST(SerialSssp, PathDistancesAreWeightPrefixSums) {
  const auto dist =
      baseline::serial_sssp(graph::build_host_csr(graph::path_graph(12)), 0);
  std::uint64_t acc = 0;
  EXPECT_EQ(dist[0], 0u);
  for (VertexId v = 1; v < 12; ++v) {
    acc += util::edge_weight(v - 1, v, 15);
    EXPECT_EQ(dist[v], acc) << v;
  }
}

TEST(SerialSssp, UnreachableStaysInfinite) {
  graph::EdgeList g;
  g.num_vertices = 6;
  g.add(0, 1);
  g.add(1, 0);
  g.add(3, 4);
  g.add(4, 3);
  const auto dist = baseline::serial_sssp(graph::build_host_csr(g), 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_NE(dist[1], kInfiniteDistance);
  EXPECT_EQ(dist[3], kInfiniteDistance);
  EXPECT_EQ(dist[5], kInfiniteDistance);
}

TEST(Sssp, MatchesSerialOnNamedGraphs) {
  expect_matches_serial(graph::star_graph(40), spec_of(2, 2), 8, 1);
  expect_matches_serial(graph::path_graph(30), spec_of(2, 2), 4, 0);
  expect_matches_serial(graph::grid_graph(6, 5), spec_of(2, 2), 4, 7);
  expect_matches_serial(graph::cycle_graph(24), spec_of(2, 1), 4, 5);
}

TEST(Sssp, DelegateSourceMatchesSerial) {
  // Threshold 0 makes every vertex with an edge a delegate, so the source
  // is seeded through the replicated delegate path on every GPU.
  expect_matches_serial(graph::star_graph(20), spec_of(2, 2), 0, 0);
}

TEST(Sssp, UnreachableVerticesReportInfinity) {
  graph::EdgeList g;
  g.num_vertices = 8;
  g.add(0, 1);
  g.add(1, 0);
  const SsspResult r = run_sssp(g, spec_of(2, 1), 4, 0);
  EXPECT_EQ(r.distances[0], 0u);
  EXPECT_NE(r.distances[1], kInfiniteDistance);
  for (VertexId v = 2; v < 8; ++v) {
    EXPECT_EQ(r.distances[v], kInfiniteDistance) << v;
  }
}

struct SsspCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
};

class SsspSweep : public ::testing::TestWithParam<SsspCase> {};

TEST_P(SsspSweep, RandomGraphsMatchSerial) {
  const SsspCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 77});
  const auto spec = spec_of(c.ranks, c.gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, c.th);
  DistributedSssp sssp(dg, cluster);
  const graph::HostCsr host = graph::build_host_csr(g);
  for (const VertexId source : {VertexId{1}, VertexId{42}}) {
    const SsspResult r = sssp.run(source);
    const auto expected = baseline::serial_sssp(host, source);
    ASSERT_EQ(r.distances.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(r.distances[v], expected[v])
          << "vertex " << v << " source " << source << " case " << c.name;
    }
    EXPECT_GT(r.iterations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspSweep,
    ::testing::Values(SsspCase{"single", 1, 1, 16}, SsspCase{"quad", 2, 2, 16},
                      SsspCase{"wide", 4, 2, 32},
                      SsspCase{"all_delegates", 2, 1, 0},
                      SsspCase{"no_delegates", 2, 2, 1u << 20}),
    [](const auto& info) { return info.param.name; });

/// Factors that force pull from the first non-empty round (to_backward = 0
/// switches as soon as any frontier edge exists; to_forward = 0 never
/// switches back).
SsspOptions forced_pull_options() {
  SsspOptions o;
  o.direction_optimized = true;
  o.dd_factors = {0.0, 0.0};
  o.dn_factors = {0.0, 0.0};
  o.nd_factors = {0.0, 0.0};
  return o;
}

TEST(Sssp, PushAndPullBitExactOnHashedWeights) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 31});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const auto expected = baseline::serial_sssp(graph::build_host_csr(g), 1);

  SsspOptions push;
  push.direction_optimized = false;
  const SsspResult rp = DistributedSssp(dg, cluster, push).run(1);
  EXPECT_EQ(rp.pull_iterations, 0);

  const SsspResult rb =
      DistributedSssp(dg, cluster, forced_pull_options()).run(1);
  EXPECT_GT(rb.pull_iterations, 0);

  const SsspResult rd = DistributedSssp(dg, cluster, SsspOptions{}).run(1);

  ASSERT_EQ(rp.distances, expected);
  ASSERT_EQ(rb.distances, expected);
  ASSERT_EQ(rd.distances, expected);
}

TEST(Sssp, PushAndPullBitExactOnStoredWeights) {
  graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 32});
  graph::assign_uniform_weights(g, 24, 13);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  ASSERT_TRUE(dg.weighted());
  const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
  const auto expected = baseline::serial_sssp(
      host.csr, std::span<const std::uint32_t>(host.weights), 1);

  SsspOptions push;
  push.direction_optimized = false;
  const SsspResult rp = DistributedSssp(dg, cluster, push).run(1);
  const SsspResult rb =
      DistributedSssp(dg, cluster, forced_pull_options()).run(1);
  EXPECT_GT(rb.pull_iterations, 0);

  ASSERT_EQ(rp.distances, expected);
  ASSERT_EQ(rb.distances, expected);

  // Stored weights came from a different generator seed than the hashed
  // fallback, so they must actually change the answer somewhere.
  const auto hashed = baseline::serial_sssp(host.csr, 1);
  EXPECT_NE(expected, hashed);
}

TEST(Sssp, StoredWeightsMatchSerialOnNamedGraphs) {
  for (const std::uint32_t th : {std::uint32_t{0}, std::uint32_t{4}}) {
    graph::EdgeList g = graph::grid_graph(7, 5);
    graph::assign_uniform_weights(g, 100, 3);
    const auto spec = spec_of(2, 2);
    sim::Cluster cluster(spec);
    const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
    const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
    const auto expected = baseline::serial_sssp(
        host.csr, std::span<const std::uint32_t>(host.weights), 0);
    const SsspResult r = DistributedSssp(dg, cluster).run(0);
    ASSERT_EQ(r.distances, expected) << "threshold " << th;
  }
}

TEST(Sssp, CollectsCountersAndModel) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 78});
  const SsspResult r = run_sssp(g, spec_of(2, 2), 16, 3);
  EXPECT_GT(r.iterations, 1);
  EXPECT_GT(r.modeled_ms, 0.0);
  EXPECT_GT(r.update_bytes_remote, 0u);
  EXPECT_GT(r.reduce_bytes, 0u);
}

TEST(Sssp, RejectsBadArguments) {
  const graph::EdgeList g = graph::path_graph(8);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  DistributedSssp sssp(dg, cluster);
  EXPECT_THROW(sssp.run(1000), std::out_of_range);
  EXPECT_THROW(DistributedSssp(dg, cluster, SsspOptions{.max_weight = 0}),
               std::invalid_argument);
  sim::Cluster wrong(spec_of(4, 1));
  EXPECT_THROW(DistributedSssp(dg, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::core
