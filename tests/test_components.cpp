#include "core/components.hpp"

#include <gtest/gtest.h>

#include "baseline/host_apps.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

CcResult run_cc(const graph::EdgeList& g, sim::ClusterSpec spec,
                std::uint32_t th) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  ConnectedComponents cc(dg, cluster);
  return cc.run();
}

void expect_matches_host(const graph::EdgeList& g, sim::ClusterSpec spec,
                         std::uint32_t th) {
  const CcResult r = run_cc(g, spec, th);
  const auto expected = baseline::serial_components(graph::build_host_csr(g));
  ASSERT_EQ(r.labels.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(r.labels[v], expected[v])
        << "vertex " << v << " spec " << spec.to_string() << " th " << th;
  }
}

TEST(HostComponents, TwoCliques) {
  const auto labels =
      baseline::serial_components(graph::build_host_csr(graph::two_cliques(4)));
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(labels[v], 0u);
  for (VertexId v = 4; v < 8; ++v) EXPECT_EQ(labels[v], 4u);
}

TEST(HostComponents, IsolatedVerticesLabelThemselves) {
  graph::EdgeList g;
  g.num_vertices = 5;
  g.add(1, 3);
  g.add(3, 1);
  const auto labels = baseline::serial_components(graph::build_host_csr(g));
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[3], 1u);
  EXPECT_EQ(labels[4], 4u);
}

TEST(Components, SingleComponentGraphs) {
  expect_matches_host(graph::path_graph(30), spec_of(2, 2), 4);
  expect_matches_host(graph::star_graph(40), spec_of(2, 2), 8);
  expect_matches_host(graph::cycle_graph(25), spec_of(2, 2), 4);
}

TEST(Components, MultiComponent) {
  expect_matches_host(graph::two_cliques(8), spec_of(2, 2), 4);
}

TEST(Components, CountsComponents) {
  const CcResult r = run_cc(graph::two_cliques(8), spec_of(2, 1), 4);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_GT(r.iterations, 0);
}

TEST(Components, IsolatedVerticesCounted) {
  graph::EdgeList g;
  g.num_vertices = 10;
  g.add(0, 1);
  g.add(1, 0);
  const CcResult r = run_cc(g, spec_of(2, 1), 4);
  EXPECT_EQ(r.num_components, 9u);  // {0,1} plus 8 singletons
}

struct CcCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
};

class ComponentsSweep : public ::testing::TestWithParam<CcCase> {};

TEST_P(ComponentsSweep, RandomGraphsMatchHost) {
  const CcCase c = GetParam();
  // Erdos-Renyi below the connectivity threshold: many components.
  const graph::EdgeList g = graph::erdos_renyi(1 << 10, 1 << 9, 91);
  expect_matches_host(g, spec_of(c.ranks, c.gpus), c.th);
  // RMAT: one giant component plus isolated vertices.
  const graph::EdgeList r = graph::rmat_graph500({.scale = 10, .seed = 92});
  expect_matches_host(r, spec_of(c.ranks, c.gpus), c.th);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComponentsSweep,
    ::testing::Values(CcCase{"single", 1, 1, 16}, CcCase{"quad", 2, 2, 16},
                      CcCase{"wide", 4, 2, 32},
                      CcCase{"all_delegates", 2, 2, 0},
                      CcCase{"no_delegates", 2, 2, 1u << 20}),
    [](const auto& info) { return info.param.name; });

TEST(Components, DelegateTrafficIsValueSized) {
  // Section VI-D: beyond BFS, delegates carry values -- d x 8 bytes per
  // reduction instead of d/8.  The counters must reflect that.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 93});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const auto dg = graph::build_distributed(g, spec, 16);
  ConnectedComponents cc(dg, cluster);
  const CcResult r = cc.run();
  EXPECT_EQ(r.reduce_bytes,
            2ULL * dg.num_delegates() * 8 * 2 *
                static_cast<std::uint64_t>(r.iterations));
  EXPECT_GT(r.modeled_ms, 0.0);
}

TEST(Components, ConvergesInDiameterIterations) {
  // Min labels propagate one hop per iteration: the path graph needs ~n
  // iterations, dense graphs only a few.
  const CcResult path = run_cc(graph::path_graph(64), spec_of(2, 1), 4);
  EXPECT_GE(path.iterations, 32);
  const CcResult clique = run_cc(graph::complete_graph(64), spec_of(2, 1), 4);
  EXPECT_LE(clique.iterations, 4);
}

TEST(Components, LabelsIdenticalAcrossTopologies) {
  // Component labels are integers: every cluster shape must produce the
  // exact same result (no floating-point or ordering leeway).
  const graph::EdgeList g = graph::erdos_renyi(1 << 11, 1 << 10, 94);
  const CcResult reference = run_cc(g, spec_of(1, 1), 16);
  for (const auto& [ranks, gpus] : {std::pair{1, 4}, {4, 1}, {2, 2}, {3, 2}}) {
    const CcResult r = run_cc(g, spec_of(ranks, gpus), 16);
    EXPECT_EQ(r.labels, reference.labels) << ranks << "x" << gpus;
    EXPECT_EQ(r.num_components, reference.num_components);
  }
}

TEST(Components, WebGraphMatchesHost) {
  graph::WebGraphLikeParams p;
  p.chain_length = 12;
  p.community_size = 64;
  expect_matches_host(graph::webgraph_like(p), spec_of(2, 2), 16);
}

}  // namespace
}  // namespace dsbfs::core
