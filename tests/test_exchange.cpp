#include "comm/exchange.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace dsbfs::comm {
namespace {

struct ExchangeSetup {
  sim::ClusterSpec spec;
  ExchangeOptions options;
};

/// Run one collective exchange where GPU g sends value (g*1000 + dest) to
/// every destination GPU `dest`, and return everyone's received vectors.
std::vector<std::vector<LocalId>> run_exchange(
    const ExchangeSetup& setup, std::vector<ExchangeCounters>* counters_out,
    int duplicates = 1) {
  const int p = setup.spec.total_gpus();
  Transport t(setup.spec);
  NormalExchange ex(t, setup.spec);
  std::vector<std::vector<LocalId>> received(static_cast<std::size_t>(p));
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        for (int dup = 0; dup < duplicates; ++dup) {
          bins[static_cast<std::size_t>(dest)].push_back(
              static_cast<LocalId>(g * 1000 + dest));
        }
      }
      received[static_cast<std::size_t>(g)] =
          ex.exchange(setup.spec.coord_of(g), bins, /*iteration=*/0,
                      setup.options, counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return received;
}

void expect_correct_delivery(const sim::ClusterSpec& spec,
                             std::vector<std::vector<LocalId>> received,
                             int copies = 1) {
  const int p = spec.total_gpus();
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    std::sort(r.begin(), r.end());
    std::vector<LocalId> expected;
    for (int sender = 0; sender < p; ++sender) {
      for (int c = 0; c < copies; ++c) {
        expected.push_back(static_cast<LocalId>(sender * 1000 + g));
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(r, expected) << "gpu " << g;
  }
}

struct NamedCase {
  const char* name;
  int ranks, gpus;
  bool local_all2all, uniquify;
};

class ExchangePatterns : public ::testing::TestWithParam<NamedCase> {};

TEST_P(ExchangePatterns, EveryIdReachesItsOwner) {
  const NamedCase c = GetParam();
  ExchangeSetup setup;
  setup.spec.num_ranks = c.ranks;
  setup.spec.gpus_per_rank = c.gpus;
  setup.options = {c.local_all2all, c.uniquify};
  auto received = run_exchange(setup, nullptr);
  expect_correct_delivery(setup.spec, std::move(received));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ExchangePatterns,
    ::testing::Values(NamedCase{"direct_1x1", 1, 1, false, false},
                      NamedCase{"direct_1x4", 1, 4, false, false},
                      NamedCase{"direct_4x1", 4, 1, false, false},
                      NamedCase{"direct_2x2", 2, 2, false, false},
                      NamedCase{"direct_3x3", 3, 3, false, false},
                      NamedCase{"l_2x2", 2, 2, true, false},
                      NamedCase{"l_4x2", 4, 2, true, false},
                      NamedCase{"l_3x3", 3, 3, true, false},
                      NamedCase{"lu_2x2", 2, 2, true, true},
                      NamedCase{"lu_4x4", 4, 4, true, true},
                      NamedCase{"u_only_2x2", 2, 2, false, true}),
    [](const auto& info) { return info.param.name; });

TEST(Exchange, UniquifyRemovesDuplicates) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 2;
  setup.options = {true, true};
  std::vector<ExchangeCounters> counters;
  auto received = run_exchange(setup, &counters, /*duplicates=*/3);
  // Remote bins deduplicate to one copy; the local loopback bin and
  // same-rank traffic keep duplicates (uniquify targets remote sends).
  const int p = setup.spec.total_gpus();
  std::uint64_t removed = 0;
  for (const auto& c : counters) removed += c.duplicates_removed;
  // Each GPU sends to 1 remote rank after L (2 ranks total): that column
  // bin had 2 senders' worth with 3 copies each -> duplicates exist.
  EXPECT_GT(removed, 0u);
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    // After dedup, each remote sender's id appears once; local copies stay.
    std::sort(r.begin(), r.end());
    EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
  }
}

TEST(Exchange, NoUniquifyKeepsDuplicates) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  auto received = run_exchange(setup, nullptr, /*duplicates=*/2);
  expect_correct_delivery(setup.spec, std::move(received), /*copies=*/2);
}

TEST(Exchange, LocalAll2AllEliminatesCrossColumnRemotePairs) {
  // With L, remote messages only connect GPUs with equal local index:
  // message count per iteration drops from p*(p-pgpu) to pgpu*prank*(prank-1)
  // (p^2 -> p^2/pgpu scaling, Section V-B).
  ExchangeSetup direct;
  direct.spec.num_ranks = 4;
  direct.spec.gpus_per_rank = 4;
  direct.options = {false, false};

  ExchangeSetup with_l = direct;
  with_l.options = {true, false};

  Transport td(direct.spec);
  {
    NormalExchange ex(td, direct.spec);
    std::vector<std::thread> threads;
    for (int g = 0; g < direct.spec.total_gpus(); ++g) {
      threads.emplace_back([&, g] {
        std::vector<std::vector<LocalId>> bins(
            static_cast<std::size_t>(direct.spec.total_gpus()));
        for (auto& b : bins) b.push_back(1);
        ExchangeCounters c;
        ex.exchange(direct.spec.coord_of(g), bins, 0, direct.options, c);
      });
    }
    for (auto& th : threads) th.join();
  }

  Transport tl(with_l.spec);
  {
    NormalExchange ex(tl, with_l.spec);
    std::vector<std::thread> threads;
    for (int g = 0; g < with_l.spec.total_gpus(); ++g) {
      threads.emplace_back([&, g] {
        std::vector<std::vector<LocalId>> bins(
            static_cast<std::size_t>(with_l.spec.total_gpus()));
        for (auto& b : bins) b.push_back(1);
        ExchangeCounters c;
        ex.exchange(with_l.spec.coord_of(g), bins, 0, with_l.options, c);
      });
    }
    for (auto& th : threads) th.join();
  }

  // Count cross-rank messages: direct = p * (p - pgpu) = 16*12 = 192;
  // with L = p * (prank - 1) = 16*3 = 48.
  // (Transport counts all messages; same-rank ones differ too, but the
  // cross-rank byte counter isolates the remote pattern.)
  EXPECT_GT(td.bytes_cross_rank(), tl.bytes_cross_rank() * 2);
}

TEST(Exchange, CountersTrackRemoteBytes) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  std::vector<ExchangeCounters> counters;
  run_exchange(setup, &counters);
  // GPU 0 sends exactly one id (4 bytes) to GPU 1 (other rank) and vice
  // versa.
  for (const auto& c : counters) {
    EXPECT_EQ(c.send_bytes_remote, 4u);
    EXPECT_EQ(c.recv_bytes_remote, 4u);
    EXPECT_EQ(c.send_dest_ranks, 1);
    EXPECT_EQ(c.bin_vertices, 2u);  // one per destination (incl. loopback)
  }
}

TEST(Exchange, LoopbackOnlySingleGpu) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 1;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  std::vector<ExchangeCounters> counters;
  auto received = run_exchange(setup, &counters);
  ASSERT_EQ(received[0].size(), 1u);
  EXPECT_EQ(received[0][0], 0u);  // 0*1000 + 0
  EXPECT_EQ(counters[0].send_bytes_remote, 0u);
}

TEST(Exchange, EmptyBinsStillCompleteCollectively) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 3;
  setup.spec.gpus_per_rank = 2;
  const int p = setup.spec.total_gpus();
  Transport t(setup.spec);
  NormalExchange ex(t, setup.spec);
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(static_cast<std::size_t>(p));
      ExchangeCounters c;
      const auto r = ex.exchange(setup.spec.coord_of(g), bins, 0,
                                 {true, true}, c);
      EXPECT_TRUE(r.empty());
      completed.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), p);
}

TEST(UpdateExchange, PairsReachOwners) {
  // The (id, value) exchange behind CC labels and PageRank contributions.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  std::vector<std::vector<VertexUpdate>> received(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        bins[static_cast<std::size_t>(dest)].push_back(VertexUpdate{
            static_cast<LocalId>(dest),
            static_cast<std::uint64_t>(g) << 32 | 0xabcdu});
      }
      ExchangeCounters c;
      received[static_cast<std::size_t>(g)] =
          exchange_updates(t, spec, spec.coord_of(g), bins, 0, c);
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), static_cast<std::size_t>(p));
    std::vector<std::uint64_t> senders;
    for (const VertexUpdate& u : r) {
      EXPECT_EQ(u.vertex, static_cast<LocalId>(g));
      EXPECT_EQ(u.value & 0xffffffffu, 0xabcdu);
      senders.push_back(u.value >> 32);
    }
    std::sort(senders.begin(), senders.end());
    for (int sndr = 0; sndr < p; ++sndr) {
      EXPECT_EQ(senders[static_cast<std::size_t>(sndr)],
                static_cast<std::uint64_t>(sndr));
    }
  }
}

TEST(UpdateExchange, CountersUseTwelveBytesPerUpdate) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::vector<ExchangeCounters> counters(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(2);
      bins[static_cast<std::size_t>(1 - g)].assign(10, VertexUpdate{1, 2});
      exchange_updates(t, spec, spec.coord_of(g), bins, 0,
                       counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : counters) {
    EXPECT_EQ(c.send_bytes_remote, 120u);  // 10 updates x 12 bytes
    EXPECT_EQ(c.recv_bytes_remote, 120u);
    EXPECT_EQ(c.send_dest_ranks, 1);
  }
}

TEST(Exchange, UniquifyCountersCountScannedAndRemoved) {
  // Direct path, 2 ranks x 1 GPU: each GPU sends the same id five times to
  // the other GPU.  Uniquify scans all five and removes four; one 4-byte id
  // crosses the wire.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  NormalExchange ex(t, spec);
  std::vector<ExchangeCounters> counters(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(2);
      bins[static_cast<std::size_t>(1 - g)].assign(5, LocalId{7});
      ex.exchange(spec.coord_of(g), bins, 0, {false, true},
                  counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : counters) {
    EXPECT_EQ(c.bin_vertices, 5u);
    EXPECT_EQ(c.uniquify_vertices, 5u);
    EXPECT_EQ(c.duplicates_removed, 4u);
    EXPECT_EQ(c.send_bytes_remote, 4u);
    EXPECT_EQ(c.recv_bytes_remote, 4u);
    EXPECT_EQ(c.local_bytes, 0u);
  }
}

TEST(UpdateExchange, CountersSplitLocalAndRemoteBytes) {
  // 2 ranks x 2 GPUs: GPU g sends (g + 1) updates to every GPU including
  // itself.  One destination shares g's rank (12 bytes each over NVLink),
  // two are remote; the loopback bin is counted in bin_vertices but moves
  // no bytes.  The update exchange never uniquifies.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        bins[static_cast<std::size_t>(dest)].assign(
            static_cast<std::size_t>(g + 1), VertexUpdate{3, 9});
      }
      exchange_updates(t, spec, spec.coord_of(g), bins, 0,
                       counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    const auto& c = counters[static_cast<std::size_t>(g)];
    const std::uint64_t per_bin = static_cast<std::uint64_t>(g + 1);
    EXPECT_EQ(c.bin_vertices, 4 * per_bin) << "gpu " << g;
    EXPECT_EQ(c.local_bytes, per_bin * 12) << "gpu " << g;
    EXPECT_EQ(c.send_bytes_remote, 2 * per_bin * 12) << "gpu " << g;
    EXPECT_EQ(c.send_dest_ranks, 2) << "gpu " << g;
    // Remote senders are the two GPUs of the other rank.
    std::uint64_t expected_recv = 0;
    for (int s = 0; s < p; ++s) {
      if (spec.coord_of(s).rank != spec.coord_of(g).rank) {
        expected_recv += static_cast<std::uint64_t>(s + 1) * 12;
      }
    }
    EXPECT_EQ(c.recv_bytes_remote, expected_recv) << "gpu " << g;
    EXPECT_EQ(c.uniquify_vertices, 0u);
    EXPECT_EQ(c.duplicates_removed, 0u);
  }
}

TEST(UpdateExchange, EmptyBinsComplete) {
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int g = 0; g < 3; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(3);
      ExchangeCounters c;
      EXPECT_TRUE(
          exchange_updates(t, spec, spec.coord_of(g), bins, 0, c).empty());
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), 3);
}

TEST(Exchange, OddIdValuesSurvivePacking) {
  // The 2-ids-per-word packing must handle odd counts and large id values.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  NormalExchange ex(t, spec);
  std::vector<std::vector<LocalId>> received(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(2);
      if (g == 0) {
        bins[1] = {0xffffffffu, 1u, 0x80000000u};  // odd count, extreme values
      }
      ExchangeCounters c;
      received[static_cast<std::size_t>(g)] =
          ex.exchange(spec.coord_of(g), bins, 0, {}, c);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(received[1],
            (std::vector<LocalId>{0xffffffffu, 1u, 0x80000000u}));
}

}  // namespace
}  // namespace dsbfs::comm
