#include "comm/exchange.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <functional>
#include <thread>

#include "baseline/host_apps.hpp"
#include "core/components.hpp"
#include "core/sssp.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::comm {
namespace {

struct ExchangeSetup {
  sim::ClusterSpec spec;
  ExchangeOptions options;
};

/// Run one collective exchange where GPU g sends value (g*1000 + dest) to
/// every destination GPU `dest`, and return everyone's received vectors.
std::vector<std::vector<LocalId>> run_exchange(
    const ExchangeSetup& setup, std::vector<ExchangeCounters>* counters_out,
    int duplicates = 1) {
  const int p = setup.spec.total_gpus();
  Transport t(setup.spec);
  NormalExchange ex(t, setup.spec);
  std::vector<std::vector<LocalId>> received(static_cast<std::size_t>(p));
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        for (int dup = 0; dup < duplicates; ++dup) {
          bins[static_cast<std::size_t>(dest)].push_back(
              static_cast<LocalId>(g * 1000 + dest));
        }
      }
      received[static_cast<std::size_t>(g)] =
          ex.exchange(setup.spec.coord_of(g), bins, /*iteration=*/0,
                      setup.options, counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return received;
}

void expect_correct_delivery(const sim::ClusterSpec& spec,
                             std::vector<std::vector<LocalId>> received,
                             int copies = 1) {
  const int p = spec.total_gpus();
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    std::sort(r.begin(), r.end());
    std::vector<LocalId> expected;
    for (int sender = 0; sender < p; ++sender) {
      for (int c = 0; c < copies; ++c) {
        expected.push_back(static_cast<LocalId>(sender * 1000 + g));
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(r, expected) << "gpu " << g;
  }
}

struct NamedCase {
  const char* name;
  int ranks, gpus;
  bool local_all2all, uniquify;
};

class ExchangePatterns : public ::testing::TestWithParam<NamedCase> {};

TEST_P(ExchangePatterns, EveryIdReachesItsOwner) {
  const NamedCase c = GetParam();
  ExchangeSetup setup;
  setup.spec.num_ranks = c.ranks;
  setup.spec.gpus_per_rank = c.gpus;
  setup.options = {c.local_all2all, c.uniquify};
  auto received = run_exchange(setup, nullptr);
  expect_correct_delivery(setup.spec, std::move(received));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ExchangePatterns,
    ::testing::Values(NamedCase{"direct_1x1", 1, 1, false, false},
                      NamedCase{"direct_1x4", 1, 4, false, false},
                      NamedCase{"direct_4x1", 4, 1, false, false},
                      NamedCase{"direct_2x2", 2, 2, false, false},
                      NamedCase{"direct_3x3", 3, 3, false, false},
                      NamedCase{"l_2x2", 2, 2, true, false},
                      NamedCase{"l_4x2", 4, 2, true, false},
                      NamedCase{"l_3x3", 3, 3, true, false},
                      NamedCase{"lu_2x2", 2, 2, true, true},
                      NamedCase{"lu_4x4", 4, 4, true, true},
                      NamedCase{"u_only_2x2", 2, 2, false, true}),
    [](const auto& info) { return info.param.name; });

TEST(Exchange, UniquifyRemovesDuplicates) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 2;
  setup.options = {true, true};
  std::vector<ExchangeCounters> counters;
  auto received = run_exchange(setup, &counters, /*duplicates=*/3);
  // Remote bins deduplicate to one copy; the local loopback bin and
  // same-rank traffic keep duplicates (uniquify targets remote sends).
  const int p = setup.spec.total_gpus();
  std::uint64_t removed = 0;
  for (const auto& c : counters) removed += c.duplicates_removed;
  // Each GPU sends to 1 remote rank after L (2 ranks total): that column
  // bin had 2 senders' worth with 3 copies each -> duplicates exist.
  EXPECT_GT(removed, 0u);
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    // After dedup, each remote sender's id appears once; local copies stay.
    std::sort(r.begin(), r.end());
    EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
  }
}

TEST(Exchange, NoUniquifyKeepsDuplicates) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  auto received = run_exchange(setup, nullptr, /*duplicates=*/2);
  expect_correct_delivery(setup.spec, std::move(received), /*copies=*/2);
}

TEST(Exchange, LocalAll2AllEliminatesCrossColumnRemotePairs) {
  // With L, remote messages only connect GPUs with equal local index:
  // message count per iteration drops from p*(p-pgpu) to pgpu*prank*(prank-1)
  // (p^2 -> p^2/pgpu scaling, Section V-B).
  ExchangeSetup direct;
  direct.spec.num_ranks = 4;
  direct.spec.gpus_per_rank = 4;
  direct.options = {false, false};

  ExchangeSetup with_l = direct;
  with_l.options = {true, false};

  Transport td(direct.spec);
  {
    NormalExchange ex(td, direct.spec);
    std::vector<std::thread> threads;
    for (int g = 0; g < direct.spec.total_gpus(); ++g) {
      threads.emplace_back([&, g] {
        std::vector<std::vector<LocalId>> bins(
            static_cast<std::size_t>(direct.spec.total_gpus()));
        for (auto& b : bins) b.push_back(1);
        ExchangeCounters c;
        ex.exchange(direct.spec.coord_of(g), bins, 0, direct.options, c);
      });
    }
    for (auto& th : threads) th.join();
  }

  Transport tl(with_l.spec);
  {
    NormalExchange ex(tl, with_l.spec);
    std::vector<std::thread> threads;
    for (int g = 0; g < with_l.spec.total_gpus(); ++g) {
      threads.emplace_back([&, g] {
        std::vector<std::vector<LocalId>> bins(
            static_cast<std::size_t>(with_l.spec.total_gpus()));
        for (auto& b : bins) b.push_back(1);
        ExchangeCounters c;
        ex.exchange(with_l.spec.coord_of(g), bins, 0, with_l.options, c);
      });
    }
    for (auto& th : threads) th.join();
  }

  // Count cross-rank messages: direct = p * (p - pgpu) = 16*12 = 192;
  // with L = p * (prank - 1) = 16*3 = 48.
  // (Transport counts all messages; same-rank ones differ too, but the
  // cross-rank byte counter isolates the remote pattern.)
  EXPECT_GT(td.bytes_cross_rank(), tl.bytes_cross_rank() * 2);
}

TEST(Exchange, CountersTrackRemoteBytes) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 2;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  std::vector<ExchangeCounters> counters;
  run_exchange(setup, &counters);
  // GPU 0 sends exactly one id (4 bytes) to GPU 1 (other rank) and vice
  // versa.
  for (const auto& c : counters) {
    EXPECT_EQ(c.send_bytes_remote, 4u);
    EXPECT_EQ(c.recv_bytes_remote, 4u);
    EXPECT_EQ(c.send_dest_ranks, 1);
    EXPECT_EQ(c.bin_vertices, 2u);  // one per destination (incl. loopback)
  }
}

TEST(Exchange, LoopbackOnlySingleGpu) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 1;
  setup.spec.gpus_per_rank = 1;
  setup.options = {false, false};
  std::vector<ExchangeCounters> counters;
  auto received = run_exchange(setup, &counters);
  ASSERT_EQ(received[0].size(), 1u);
  EXPECT_EQ(received[0][0], 0u);  // 0*1000 + 0
  EXPECT_EQ(counters[0].send_bytes_remote, 0u);
}

TEST(Exchange, EmptyBinsStillCompleteCollectively) {
  ExchangeSetup setup;
  setup.spec.num_ranks = 3;
  setup.spec.gpus_per_rank = 2;
  const int p = setup.spec.total_gpus();
  Transport t(setup.spec);
  NormalExchange ex(t, setup.spec);
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(static_cast<std::size_t>(p));
      ExchangeCounters c;
      const auto r = ex.exchange(setup.spec.coord_of(g), bins, 0,
                                 {true, true}, c);
      EXPECT_TRUE(r.empty());
      completed.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), p);
}

TEST(UpdateExchange, PairsReachOwners) {
  // The (id, value) exchange behind CC labels and PageRank contributions.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  std::vector<std::vector<VertexUpdate>> received(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        bins[static_cast<std::size_t>(dest)].push_back(VertexUpdate{
            static_cast<LocalId>(dest),
            static_cast<std::uint64_t>(g) << 32 | 0xabcdu});
      }
      ExchangeCounters c;
      received[static_cast<std::size_t>(g)] =
          exchange_updates(t, spec, spec.coord_of(g), bins, 0, {}, c);
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), static_cast<std::size_t>(p));
    std::vector<std::uint64_t> senders;
    for (const VertexUpdate& u : r) {
      EXPECT_EQ(u.vertex, static_cast<LocalId>(g));
      EXPECT_EQ(u.value & 0xffffffffu, 0xabcdu);
      senders.push_back(u.value >> 32);
    }
    std::sort(senders.begin(), senders.end());
    for (int sndr = 0; sndr < p; ++sndr) {
      EXPECT_EQ(senders[static_cast<std::size_t>(sndr)],
                static_cast<std::uint64_t>(sndr));
    }
  }
}

TEST(UpdateExchange, CountersUseTwelveBytesPerUpdate) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::vector<ExchangeCounters> counters(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(2);
      bins[static_cast<std::size_t>(1 - g)].assign(10, VertexUpdate{1, 2});
      exchange_updates(t, spec, spec.coord_of(g), bins, 0, {},
                       counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : counters) {
    EXPECT_EQ(c.send_bytes_remote, 120u);  // 10 updates x 12 bytes
    EXPECT_EQ(c.recv_bytes_remote, 120u);
    EXPECT_EQ(c.send_dest_ranks, 1);
  }
}

TEST(Exchange, UniquifyCountersCountScannedAndRemoved) {
  // Direct path, 2 ranks x 1 GPU: each GPU sends the same id five times to
  // the other GPU.  Uniquify scans all five and removes four; one 4-byte id
  // crosses the wire.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  NormalExchange ex(t, spec);
  std::vector<ExchangeCounters> counters(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(2);
      bins[static_cast<std::size_t>(1 - g)].assign(5, LocalId{7});
      ex.exchange(spec.coord_of(g), bins, 0, {false, true},
                  counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : counters) {
    EXPECT_EQ(c.bin_vertices, 5u);
    EXPECT_EQ(c.uniquify_vertices, 5u);
    EXPECT_EQ(c.duplicates_removed, 4u);
    EXPECT_EQ(c.send_bytes_remote, 4u);
    EXPECT_EQ(c.recv_bytes_remote, 4u);
    EXPECT_EQ(c.local_bytes, 0u);
  }
}

TEST(UpdateExchange, CountersSplitLocalAndRemoteBytes) {
  // 2 ranks x 2 GPUs: GPU g sends (g + 1) updates to every GPU including
  // itself.  One destination shares g's rank (12 bytes each over NVLink),
  // two are remote; the loopback bin is counted in bin_vertices but moves
  // no bytes.  Default options: no coalescing, no compression.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(static_cast<std::size_t>(p));
      for (int dest = 0; dest < p; ++dest) {
        bins[static_cast<std::size_t>(dest)].assign(
            static_cast<std::size_t>(g + 1), VertexUpdate{3, 9});
      }
      exchange_updates(t, spec, spec.coord_of(g), bins, 0, {},
                       counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    const auto& c = counters[static_cast<std::size_t>(g)];
    const std::uint64_t per_bin = static_cast<std::uint64_t>(g + 1);
    EXPECT_EQ(c.bin_vertices, 4 * per_bin) << "gpu " << g;
    EXPECT_EQ(c.local_bytes, per_bin * 12) << "gpu " << g;
    EXPECT_EQ(c.send_bytes_remote, 2 * per_bin * 12) << "gpu " << g;
    EXPECT_EQ(c.send_dest_ranks, 2) << "gpu " << g;
    // Remote senders are the two GPUs of the other rank.
    std::uint64_t expected_recv = 0;
    for (int s = 0; s < p; ++s) {
      if (spec.coord_of(s).rank != spec.coord_of(g).rank) {
        expected_recv += static_cast<std::uint64_t>(s + 1) * 12;
      }
    }
    EXPECT_EQ(c.recv_bytes_remote, expected_recv) << "gpu " << g;
    EXPECT_EQ(c.uniquify_vertices, 0u);
    EXPECT_EQ(c.duplicates_removed, 0u);
  }
}

TEST(UpdateExchange, EmptyBinsComplete) {
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int g = 0; g < 3; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(3);
      ExchangeCounters c;
      EXPECT_TRUE(
          exchange_updates(t, spec, spec.coord_of(g), bins, 0, {}, c).empty());
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), 3);
}

TEST(Exchange, OddIdValuesSurvivePacking) {
  // The 2-ids-per-word packing must handle odd counts and large id values.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  NormalExchange ex(t, spec);
  std::vector<std::vector<LocalId>> received(2);
  std::vector<std::thread> threads;
  for (int g = 0; g < 2; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<LocalId>> bins(2);
      if (g == 0) {
        bins[1] = {0xffffffffu, 1u, 0x80000000u};  // odd count, extreme values
      }
      ExchangeCounters c;
      received[static_cast<std::size_t>(g)] =
          ex.exchange(spec.coord_of(g), bins, 0, {}, c);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(received[1],
            (std::vector<LocalId>{0xffffffffu, 1u, 0x80000000u}));
}

// ---- update coalescing (min/sum-uniquify) and compression ----------------

/// Run one collective update exchange on `spec` where every GPU fills its
/// bins via `fill(gpu, bins)`; returns everyone's received vectors.
std::vector<std::vector<VertexUpdate>> run_update_exchange(
    const sim::ClusterSpec& spec, const UpdateExchangeOptions& options,
    std::vector<ExchangeCounters>* counters_out,
    const std::function<void(int, std::vector<std::vector<VertexUpdate>>&)>&
        fill) {
  const int p = spec.total_gpus();
  Transport t(spec);
  std::vector<std::vector<VertexUpdate>> received(static_cast<std::size_t>(p));
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::vector<std::vector<VertexUpdate>> bins(static_cast<std::size_t>(p));
      fill(g, bins);
      received[static_cast<std::size_t>(g)] =
          exchange_updates(t, spec, spec.coord_of(g), bins, 0, options,
                           counters[static_cast<std::size_t>(g)]);
    });
  }
  for (auto& th : threads) th.join();
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return received;
}

TEST(UpdateExchange, MinCoalesceShrinksBinsAndBytes) {
  // 2 ranks x 1 GPU: each GPU sends five candidates for vertex 7 (values
  // 50..54) plus one for vertex 9.  Min-coalescing scans all six, removes
  // four, and ships two updates (24 bytes) carrying the per-vertex minima.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, {UpdateCombine::kMin, false}, &counters,
      [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        auto& bin = bins[static_cast<std::size_t>(1 - g)];
        for (std::uint64_t i = 0; i < 5; ++i) {
          bin.push_back(VertexUpdate{7, 54 - i});  // min arrives last
        }
        bin.push_back(VertexUpdate{9, 100});
      });
  for (const auto& c : counters) {
    EXPECT_EQ(c.bin_vertices, 6u);        // pre-coalesce candidate count
    EXPECT_EQ(c.uniquify_vertices, 6u);   // all scanned
    EXPECT_EQ(c.uniquify_bytes, 6u * 12); // 12-byte update records
    EXPECT_EQ(c.duplicates_removed, 4u);  // post-coalesce: 2 remain
    EXPECT_EQ(c.send_bytes_remote, 2u * 12);
    EXPECT_EQ(c.recv_bytes_remote, 2u * 12);
    EXPECT_EQ(c.encode_bytes, 0u);  // compression off
  }
  for (int g = 0; g < 2; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].vertex, 7u);
    EXPECT_EQ(r[0].value, 50u);  // the minimum survived
    EXPECT_EQ(r[1].vertex, 9u);
    EXPECT_EQ(r[1].value, 100u);
  }
}

TEST(UpdateExchange, SumCoalesceCombinesDoubleContributions) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, {UpdateCombine::kSumDouble, false}, &counters,
      [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        auto& bin = bins[static_cast<std::size_t>(1 - g)];
        for (int i = 0; i < 4; ++i) {
          bin.push_back(VertexUpdate{3, std::bit_cast<std::uint64_t>(0.25)});
        }
      });
  for (const auto& c : counters) {
    EXPECT_EQ(c.duplicates_removed, 3u);
    EXPECT_EQ(c.send_bytes_remote, 12u);
  }
  for (int g = 0; g < 2; ++g) {
    ASSERT_EQ(received[static_cast<std::size_t>(g)].size(), 1u);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(received[static_cast<std::size_t>(g)][0].value),
        1.0);
  }
}

TEST(UpdateExchange, CoalesceSkipsTheLoopbackBin) {
  // The loopback bin never hits a wire, so (like the id exchange's U
  // option) its duplicates are left to the receiver's own fold.
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, {UpdateCombine::kMin, false}, &counters,
      [](int, std::vector<std::vector<VertexUpdate>>& bins) {
        bins[0].assign(3, VertexUpdate{1, 5});
      });
  EXPECT_EQ(received[0].size(), 3u);
  EXPECT_EQ(counters[0].uniquify_vertices, 0u);
  EXPECT_EQ(counters[0].duplicates_removed, 0u);
}

TEST(UpdateExchange, CompressionRoundTripsAndCountsWireBytes) {
  // Small sorted ids and small values varint-encode to ~2 bytes per update
  // vs 12 uncompressed; the byte counters must report the wire size, and
  // encode_bytes the raw payload run through the encoder.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, {UpdateCombine::kMin, true}, &counters,
      [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        auto& bin = bins[static_cast<std::size_t>(1 - g)];
        for (std::uint64_t i = 0; i < 10; ++i) {
          bin.push_back(VertexUpdate{static_cast<LocalId>(i * 3), i + 1});
        }
      });
  for (const auto& c : counters) {
    EXPECT_EQ(c.encode_bytes, 10u * 12);
    EXPECT_GT(c.send_bytes_remote, 0u);
    EXPECT_LT(c.send_bytes_remote, 10u * 12);  // strictly fewer wire bytes
    EXPECT_EQ(c.recv_bytes_remote, c.send_bytes_remote);
  }
  for (int g = 0; g < 2; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(r[i].vertex, i * 3);
      EXPECT_EQ(r[i].value, i + 1);
    }
  }
}

TEST(UpdateExchange, CompressionSurvivesUnsortedAndExtremeValues) {
  // Without coalescing the ids arrive unsorted, so deltas go negative
  // (zigzag path), and 64-bit extremes must round-trip bit for bit.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const std::vector<VertexUpdate> payload = {
      {0xffffffffu, 0xffffffffffffffffull},
      {0u, 0u},
      {0x80000000u, std::bit_cast<std::uint64_t>(-0.125)},
      {7u, 1u},
  };
  auto received = run_update_exchange(
      spec, {UpdateCombine::kNone, true}, nullptr,
      [&](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        bins[static_cast<std::size_t>(1 - g)] = payload;
      });
  for (int g = 0; g < 2; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      EXPECT_EQ(r[i].vertex, payload[i].vertex) << i;
      EXPECT_EQ(r[i].value, payload[i].value) << i;
    }
  }
}

TEST(UpdateExchange, ValueBiasRoundTripsAndShrinksWireBytes) {
  // Bucket-tagged payload: values clustered just above a large floor (the
  // open bucket's base distance) encode as multi-byte varints raw but
  // one-byte varints once biased; the result must be identical either way,
  // including a bias *larger* than some value (mod-2^64 round trip).
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const std::uint64_t base = 1ULL << 40;
  const auto fill = [&](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    auto& bin = bins[static_cast<std::size_t>(1 - g)];
    for (std::uint64_t i = 0; i < 16; ++i) {
      bin.push_back(VertexUpdate{static_cast<LocalId>(i), base + i});
    }
    bin.push_back(VertexUpdate{100u, base - 3});  // below the floor
  };
  std::vector<ExchangeCounters> raw_counters, biased_counters;
  auto raw = run_update_exchange(spec, {UpdateCombine::kMin, true},
                                 &raw_counters, fill);
  auto biased = run_update_exchange(
      spec, {UpdateCombine::kMin, true, base}, &biased_counters, fill);
  for (int g = 0; g < 2; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    ASSERT_EQ(biased[gi].size(), raw[gi].size());
    for (std::size_t i = 0; i < raw[gi].size(); ++i) {
      EXPECT_EQ(biased[gi][i].vertex, raw[gi][i].vertex) << i;
      EXPECT_EQ(biased[gi][i].value, raw[gi][i].value) << i;
    }
  }
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_LT(biased_counters[g].send_bytes_remote,
              raw_counters[g].send_bytes_remote);
  }
}

TEST(UpdateExchange, OrCoalesceMergesLaneWords) {
  // The batched-BFS combine: candidates for one destination vertex OR their
  // lane words into a single update.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, {UpdateCombine::kOr, false}, &counters,
      [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        auto& bin = bins[static_cast<std::size_t>(1 - g)];
        bin.push_back(VertexUpdate{5, 0b0001});
        bin.push_back(VertexUpdate{5, 0b1000});
        bin.push_back(VertexUpdate{9, 0b0110});
      });
  for (const auto& c : counters) {
    EXPECT_EQ(c.duplicates_removed, 1u);
    EXPECT_EQ(c.send_bytes_remote, 2u * 12);
  }
  for (int g = 0; g < 2; ++g) {
    auto& r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].vertex, 5u);
    EXPECT_EQ(r[0].value, 0b1001u);
    EXPECT_EQ(r[1].vertex, 9u);
    EXPECT_EQ(r[1].value, 0b0110u);
  }
}

TEST(UpdateExchange, ValueBytesScalesTheWireCounters) {
  // Lane-word updates are narrower than the historic 12-byte record: the
  // counters must charge 4 + value_bytes per update (and the bare 4-byte
  // id at value_bytes = 0, the W = 1 batch where the lane is implicit).
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  for (const int value_bytes : {0, 1, 4, 8}) {
    std::vector<ExchangeCounters> counters;
    UpdateExchangeOptions options;
    options.combine = UpdateCombine::kOr;
    options.value_bytes = value_bytes;
    auto received = run_update_exchange(
        spec, options, &counters,
        [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
          auto& bin = bins[static_cast<std::size_t>(1 - g)];
          for (LocalId i = 0; i < 10; ++i) bin.push_back(VertexUpdate{i, 1});
        });
    const std::uint64_t expected =
        10u * (4u + static_cast<std::uint64_t>(value_bytes));
    for (const auto& c : counters) {
      EXPECT_EQ(c.send_bytes_remote, expected) << "width " << value_bytes;
      EXPECT_EQ(c.recv_bytes_remote, expected) << "width " << value_bytes;
      EXPECT_EQ(c.uniquify_bytes, expected) << "width " << value_bytes;
    }
    for (int g = 0; g < 2; ++g) {
      EXPECT_EQ(received[static_cast<std::size_t>(g)].size(), 10u);
    }
  }
}

TEST(UpdateExchange, AdaptiveCompressionPicksTheSmallerPathPerBin) {
  // Two bins from each GPU: one with tiny sorted ids and values (the
  // encode wins), one with scattered ids and full-range values (raw wins).
  // Both must round-trip bit for bit and the counters must record one
  // choice each way; the shipped bytes equal the per-bin minimum.
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 1;
  UpdateExchangeOptions options;
  options.compress = true;
  options.adaptive = true;
  const std::vector<VertexUpdate> wins = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}};
  std::vector<VertexUpdate> loses;
  for (int i = 0; i < 6; ++i) {
    // Alternating extremes: 5-byte zigzag deltas plus 10-byte values.
    loses.push_back(VertexUpdate{i % 2 == 0 ? 0xffffffffu : 0u,
                                 0x8000000000000000ull +
                                     static_cast<std::uint64_t>(i)});
  }
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(
      spec, options, &counters,
      [&](int g, std::vector<std::vector<VertexUpdate>>& bins) {
        bins[static_cast<std::size_t>((g + 1) % 3)] = wins;
        bins[static_cast<std::size_t>((g + 2) % 3)] = loses;
      });
  const std::uint64_t raw_bytes = 6u * 12;
  for (const auto& c : counters) {
    EXPECT_EQ(c.bins_compressed, 1u);
    EXPECT_EQ(c.bins_raw, 1u);
    // Encoded small bin is ~2 bytes per update; the raw bin ships 72.
    EXPECT_LT(c.send_bytes_remote, 2 * raw_bytes);
    EXPECT_GE(c.send_bytes_remote, raw_bytes);
    EXPECT_EQ(c.encode_bytes, 2 * raw_bytes);  // both bins were trialed
  }
  for (int g = 0; g < 3; ++g) {
    auto r = received[static_cast<std::size_t>(g)];
    ASSERT_EQ(r.size(), wins.size() + loses.size());
    std::sort(r.begin(), r.end(), [](const auto& a, const auto& b) {
      return a.value < b.value;
    });
    for (std::size_t i = 0; i < wins.size(); ++i) {
      EXPECT_EQ(r[i].vertex, wins[i].vertex);
      EXPECT_EQ(r[i].value, wins[i].value);
    }
    for (std::size_t i = 0; i < loses.size(); ++i) {
      EXPECT_EQ(r[wins.size() + i].value,
                0x8000000000000000ull + static_cast<std::uint64_t>(i));
    }
  }
}

TEST(UpdateExchange, AdaptiveNeverExceedsEitherFixedPolicy) {
  // Same payload through off / forced / adaptive: adaptive's wire volume
  // is the per-bin minimum, so it can beat both and must never lose.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const auto fill = [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    auto& bin = bins[static_cast<std::size_t>(1 - g)];
    for (std::uint64_t i = 0; i < 8; ++i) {
      bin.push_back(VertexUpdate{static_cast<LocalId>(i * 2), i});
    }
  };
  std::uint64_t bytes[3];
  for (int mode = 0; mode < 3; ++mode) {
    UpdateExchangeOptions options;
    options.compress = mode >= 1;
    options.adaptive = mode == 2;
    std::vector<ExchangeCounters> counters;
    run_update_exchange(spec, options, &counters, fill);
    bytes[mode] = counters[0].send_bytes_remote;
  }
  EXPECT_LE(bytes[2], bytes[0]);
  EXPECT_LE(bytes[2], bytes[1]);
}

TEST(UpdateExchange, GorillaRoundTripsAndBeatsVarintOnDoubles) {
  // Successive PageRank-style shares: same sign/exponent, slowly moving
  // mantissa.  The XOR stream truncates the shared bits; varint sees
  // full-width bit-cast integers and inflates past raw.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const auto fill = [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    auto& bin = bins[static_cast<std::size_t>(1 - g)];
    for (std::uint64_t i = 0; i < 32; ++i) {
      const double share = 1.0 / 64.0 + static_cast<double>(i) * 1e-6;
      bin.push_back(
          VertexUpdate{static_cast<LocalId>(i), std::bit_cast<std::uint64_t>(share)});
    }
  };
  std::uint64_t bytes[3];
  std::vector<std::vector<VertexUpdate>> received[3];
  for (int mode = 0; mode < 3; ++mode) {
    UpdateExchangeOptions options;
    options.compress = mode >= 1;
    options.gorilla = mode == 2;
    std::vector<ExchangeCounters> counters;
    received[mode] = run_update_exchange(spec, options, &counters, fill);
    bytes[mode] = counters[0].send_bytes_remote;
  }
  // Bit-exact across raw / varint / gorilla.
  for (int mode = 1; mode < 3; ++mode) {
    for (int g = 0; g < 2; ++g) {
      auto a = received[0][static_cast<std::size_t>(g)];
      auto b = received[mode][static_cast<std::size_t>(g)];
      const auto by_id = [](const auto& x, const auto& y) {
        return x.vertex < y.vertex;
      };
      std::sort(a.begin(), a.end(), by_id);
      std::sort(b.begin(), b.end(), by_id);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].vertex, b[i].vertex) << "mode " << mode;
        ASSERT_EQ(a[i].value, b[i].value) << "mode " << mode;
      }
    }
  }
  EXPECT_LT(bytes[2], bytes[0]);  // gorilla beats raw on float payloads
  EXPECT_LT(bytes[2], bytes[1]);  // and varint loses to both
}

TEST(UpdateExchange, GorillaAdaptiveNeverExceedsRawOnHostilePayload) {
  // Uncorrelated full-entropy values AND ids scattered over the full
  // 32-bit range: the XOR windows never truncate and the id deltas need
  // 4-5 varint bytes, so forced gorilla pays for its control bits; the
  // adaptive trial-encode must fall back to raw per bin.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const auto fill = [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    auto& bin = bins[static_cast<std::size_t>(1 - g)];
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t i = 0; i < 32; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      bin.push_back(VertexUpdate{
          static_cast<LocalId>(i * 2654435761u), x});
    }
  };
  std::uint64_t raw = 0, forced = 0, adaptive = 0;
  for (int mode = 0; mode < 3; ++mode) {
    UpdateExchangeOptions options;
    options.compress = mode >= 1;
    options.gorilla = mode >= 1;
    options.adaptive = mode == 2;
    std::vector<ExchangeCounters> counters;
    auto received = run_update_exchange(spec, options, &counters, fill);
    (mode == 0 ? raw : mode == 1 ? forced : adaptive) =
        counters[0].send_bytes_remote;
    for (int g = 0; g < 2; ++g) {
      EXPECT_EQ(received[static_cast<std::size_t>(g)].size(), 32u);
    }
  }
  EXPECT_GT(forced, raw);      // the payload gorilla was NOT built for
  EXPECT_LE(adaptive, raw);    // the adaptive guarantee
  EXPECT_LE(adaptive, forced);
}

TEST(UpdateExchange, GorillaRepeatAndWindowReuseCompressHard) {
  // All-identical values exercise the '0' repeat control path: two bits
  // per value after the first.  The wire must come in far under raw.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  const auto fill = [](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    auto& bin = bins[static_cast<std::size_t>(1 - g)];
    for (std::uint64_t i = 0; i < 64; ++i) {
      bin.push_back(VertexUpdate{static_cast<LocalId>(i),
                                 std::bit_cast<std::uint64_t>(0.25)});
    }
  };
  UpdateExchangeOptions options;
  options.compress = true;
  options.gorilla = true;
  std::vector<ExchangeCounters> counters;
  auto received = run_update_exchange(spec, options, &counters, fill);
  EXPECT_LT(counters[0].send_bytes_remote, 64u * 12 / 4);
  for (int g = 0; g < 2; ++g) {
    ASSERT_EQ(received[static_cast<std::size_t>(g)].size(), 64u);
    for (const auto& u : received[static_cast<std::size_t>(g)]) {
      EXPECT_EQ(u.value, std::bit_cast<std::uint64_t>(0.25));
    }
  }
}

// ---- end-to-end: the exchange options preserve algorithm results ---------

TEST(UpdateExchange, SsspBitExactWithUniquifyOnAndOff) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 55});
  const graph::HostCsr host = graph::build_host_csr(g);
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const auto expected = baseline::serial_sssp(host, 3);
  for (const bool uniquify : {false, true}) {
    for (const bool compress : {false, true}) {
      core::SsspOptions options;
      options.uniquify = uniquify;
      options.compress = compress;
      core::DistributedSssp sssp(dg, cluster, options);
      const core::SsspResult r = sssp.run(3);
      ASSERT_EQ(r.distances.size(), expected.size());
      for (VertexId v = 0; v < expected.size(); ++v) {
        ASSERT_EQ(r.distances[v], expected[v])
            << "vertex " << v << " uniquify " << uniquify << " compress "
            << compress;
      }
    }
  }
}

TEST(UpdateExchange, CcBitExactAndFewerBytesWithUniquify) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 56});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const auto expected = baseline::serial_components(graph::build_host_csr(g));

  std::uint64_t bytes_on = 0, bytes_off = 0;
  for (const bool uniquify : {false, true}) {
    core::CcOptions options;
    options.uniquify = uniquify;
    const core::CcResult r = core::ConnectedComponents(dg, cluster, options).run();
    ASSERT_EQ(r.labels.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(r.labels[v], expected[v]) << "vertex " << v << " uniquify "
                                          << uniquify;
    }
    (uniquify ? bytes_on : bytes_off) = r.update_bytes_remote;
  }
  // RMAT dense rounds produce duplicate label candidates per destination;
  // coalescing must strictly shrink the wire volume.
  EXPECT_LT(bytes_on, bytes_off);
}

TEST(UpdateExchange, SsspAutoBiasBitExactAndFewerCompressedBytes) {
  // The automatic wire bias (one min-allreduce of active distances per
  // round) generalizes delta-stepping's bucket-base bias to flat SSSP:
  // distances must stay bit-exact, and the biased varints must strictly
  // shrink the compressed wire volume on a weighted RMAT run whose
  // tentative distances sit far above zero in later rounds.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 57});
  const graph::HostCsr host = graph::build_host_csr(g);
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);

  // Wide hashed weights push tentative distances into multi-byte varint
  // territory, where subtracting the per-round floor pays off.
  constexpr std::uint32_t kWideWeights = 1u << 20;
  const auto expected_wide = baseline::serial_sssp(host, 3, kWideWeights);

  std::uint64_t bytes_biased = 0, bytes_plain = 0;
  for (const bool auto_bias : {false, true}) {
    core::SsspOptions options;
    options.max_weight = kWideWeights;
    options.compress = true;
    options.auto_value_bias = auto_bias;
    core::DistributedSssp sssp(dg, cluster, options);
    const core::SsspResult r = sssp.run(3);
    ASSERT_EQ(r.distances.size(), expected_wide.size());
    for (VertexId v = 0; v < expected_wide.size(); ++v) {
      ASSERT_EQ(r.distances[v], expected_wide[v])
          << "vertex " << v << " auto_bias " << auto_bias;
    }
    (auto_bias ? bytes_biased : bytes_plain) = r.update_bytes_remote;
  }
  EXPECT_LT(bytes_biased, bytes_plain);
}

// ---- malformed-payload corpus ---------------------------------------------
// The wire decoders are public exactly so hostile buffers can be thrown at
// them directly: every entry here must surface as a typed DecodeError, never
// an out-of-bounds read, a hang, or a silently truncated result.

TEST(WireCorpus, FrameRoundTripsAndRejectsTampering) {
  const std::vector<std::uint64_t> payload = {10, 20, 30};
  std::vector<std::uint64_t> framed = frame_payload(payload);
  ASSERT_EQ(framed.size(), payload.size() + 2);
  const auto view = verify_frame(framed);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));

  for (std::size_t w = 0; w < framed.size(); ++w) {
    for (const std::uint64_t bit : {0, 17, 63}) {
      auto bad = framed;
      bad[w] ^= 1ULL << bit;
      EXPECT_THROW(verify_frame(bad), DecodeError) << "word " << w;
    }
  }
}

TEST(WireCorpus, FrameHeaderEdgeCases) {
  // Too short for the 2-word header.
  EXPECT_THROW(verify_frame({}), DecodeError);
  EXPECT_THROW(verify_frame(std::vector<std::uint64_t>{kFrameMagic << 32}),
               DecodeError);
  // Declared payload length disagrees with the buffer.
  std::vector<std::uint64_t> framed = frame_payload({1, 2});
  framed.push_back(99);
  EXPECT_THROW(verify_frame(framed), DecodeError);
  framed.resize(framed.size() - 2);
  EXPECT_THROW(verify_frame(framed), DecodeError);
  // An empty payload is a legal frame.
  const std::vector<std::uint64_t> empty = frame_payload({});
  EXPECT_TRUE(verify_frame(empty).empty());
}

TEST(WireCorpus, IdSegmentHostileBuffers) {
  std::vector<LocalId> out;
  std::size_t pos = 0;
  // Missing count header.
  EXPECT_THROW(decode_ids({}, pos, out), DecodeError);
  // Count larger than the remaining words.
  pos = 0;
  EXPECT_THROW(decode_ids(std::vector<std::uint64_t>{5, 1}, pos, out),
               DecodeError);
  // Count near 2^64: the words-needed arithmetic must not wrap.
  pos = 0;
  EXPECT_THROW(
      decode_ids(std::vector<std::uint64_t>{~0ULL, 1, 2, 3}, pos, out),
      DecodeError);
  // A valid segment still decodes and advances pos.
  pos = 0;
  out.clear();
  decode_ids(std::vector<std::uint64_t>{3, (2ULL << 32) | 1, 3}, pos, out);
  EXPECT_EQ(out, (std::vector<LocalId>{1, 2, 3}));
  EXPECT_EQ(pos, 3u);
}

TEST(WireCorpus, RawUpdateHostileBuffers) {
  std::vector<VertexUpdate> out;
  // Missing count header.
  EXPECT_THROW(decode_updates_raw({}, out), DecodeError);
  // Truncated body, including the count-overflow probe.
  EXPECT_THROW(decode_updates_raw(std::vector<std::uint64_t>{2, 1, 7}, out),
               DecodeError);
  EXPECT_THROW(decode_updates_raw(std::vector<std::uint64_t>{~0ULL, 1}, out),
               DecodeError);
  // Over-long body (trailing garbage a length-prefixed format must reject).
  EXPECT_THROW(
      decode_updates_raw(std::vector<std::uint64_t>{1, 1, 7, 8}, out),
      DecodeError);
  // A vertex id that overflows the 32-bit local-id space.
  EXPECT_THROW(
      decode_updates_raw(std::vector<std::uint64_t>{1, 1ULL << 33, 7}, out),
      DecodeError);
  out.clear();
  decode_updates_raw(std::vector<std::uint64_t>{1, 4, 7}, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex, 4u);
  EXPECT_EQ(out[0].value, 7u);
}

TEST(WireCorpus, CompressedUpdateHostileBuffers) {
  std::vector<VertexUpdate> out;
  // Missing / short header.
  EXPECT_THROW(decode_updates_compressed({}, 0, out), DecodeError);
  EXPECT_THROW(
      decode_updates_compressed(std::vector<std::uint64_t>{1}, 0, out),
      DecodeError);
  // Declared byte count disagreeing with the body both ways.
  EXPECT_THROW(
      decode_updates_compressed(std::vector<std::uint64_t>{1, 9, 0}, 0, out),
      DecodeError);
  EXPECT_THROW(
      decode_updates_compressed(std::vector<std::uint64_t>{1, 2, 0, 0}, 0, out),
      DecodeError);
  // Count impossible for the payload size (2 bytes minimum per update).
  EXPECT_THROW(
      decode_updates_compressed(std::vector<std::uint64_t>{4, 4, 0}, 0, out),
      DecodeError);
  // A varint whose continuation bits run off the end of the body.
  EXPECT_THROW(decode_updates_compressed(
                   std::vector<std::uint64_t>{1, 2, 0x8080}, 0, out),
               DecodeError);
  // A varint wider than 64 bits (ten 0x80 continuation bytes, then 0x01).
  EXPECT_THROW(decode_updates_compressed(
                   std::vector<std::uint64_t>{1, 11, 0x8080808080808080ULL,
                                              0x018080},
                   0, out),
               DecodeError);
  // Declared bytes left over after `count` updates.
  EXPECT_THROW(decode_updates_compressed(
                   std::vector<std::uint64_t>{1, 4, 0x00000506}, 0, out),
               DecodeError);
  // Hand-packed valid payload: updates (3, 5) and (7, 2) -- zigzag deltas
  // 6 and 8, values 5 and 2, four bytes packed LE into one word.
  out.clear();
  decode_updates_compressed(std::vector<std::uint64_t>{2, 4, 0x02080506}, 0,
                            out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vertex, 3u);
  EXPECT_EQ(out[0].value, 5u);
  EXPECT_EQ(out[1].vertex, 7u);
  EXPECT_EQ(out[1].value, 2u);
  // The same payload with a value bias added back on decode.
  out.clear();
  decode_updates_compressed(std::vector<std::uint64_t>{2, 4, 0x02080506}, 100,
                            out);
  EXPECT_EQ(out[0].value, 105u);
  EXPECT_EQ(out[1].value, 102u);
}

}  // namespace
}  // namespace dsbfs::comm
