#include "core/batch_sssp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "baseline/host_apps.hpp"
#include "core/delta_sssp.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "util/lane_value_slab.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

std::vector<VertexId> pick_sources(int width, VertexId num_vertices) {
  std::vector<VertexId> sources;
  sources.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    sources.push_back((static_cast<VertexId>(i) * 37 + 1) % num_vertices);
  }
  return sources;
}

/// Every lane of a batched run must reproduce baseline::serial_delta_sssp
/// from its own source, bit for bit.
void expect_lanes_match_serial(const graph::EdgeList& g,
                               const BatchSsspResult& r,
                               const std::vector<VertexId>& sources,
                               std::uint64_t delta, const char* label) {
  const graph::HostCsr host = graph::build_host_csr(g);
  ASSERT_EQ(r.distances.size(), sources.size()) << label;
  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const auto oracle =
        baseline::serial_delta_sssp(host, sources[lane], delta);
    ASSERT_EQ(r.distances[lane].size(), oracle.size()) << label;
    for (VertexId v = 0; v < oracle.size(); ++v) {
      ASSERT_EQ(r.distances[lane][v], oracle[v])
          << label << " lane " << lane << " source " << sources[lane]
          << " vertex " << v;
    }
  }
}

struct BatchCase {
  const char* name;
  int width;
  sim::ExchangeTopology topology;
};

class BatchSsspSweep : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchSsspSweep, RmatLanesMatchSerialOracle) {
  const BatchCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 77});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const std::vector<VertexId> sources = pick_sources(c.width, g.num_vertices);
  DistributedBatchSssp sssp(
      dg, cluster, {.delta = 5, .exchange_topology = c.topology});
  const BatchSsspResult r = sssp.run(sources);
  expect_lanes_match_serial(g, r, sources, 5, c.name);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GT(r.buckets_processed, 0u);
}

TEST_P(BatchSsspSweep, GridLanesMatchSerialOracle) {
  const BatchCase c = GetParam();
  const graph::EdgeList g = graph::grid_graph(9, 7);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  const std::vector<VertexId> sources = pick_sources(c.width, g.num_vertices);
  DistributedBatchSssp sssp(
      dg, cluster, {.delta = 8, .exchange_topology = c.topology});
  const BatchSsspResult r = sssp.run(sources);
  expect_lanes_match_serial(g, r, sources, 8, c.name);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchSsspSweep,
    ::testing::Values(
        BatchCase{"w1_flat", 1, sim::ExchangeTopology::kFlat},
        BatchCase{"w8_flat", 8, sim::ExchangeTopology::kFlat},
        BatchCase{"w64_flat", 64, sim::ExchangeTopology::kFlat},
        BatchCase{"w8_butterfly", 8, sim::ExchangeTopology::kButterfly},
        BatchCase{"w64_butterfly", 64, sim::ExchangeTopology::kButterfly}),
    [](const auto& info) { return info.param.name; });

TEST(BatchSssp, WidthOneAt64BitsReproducesSingleSourceRun) {
  // W = 1 with full-width lanes is the single-source algorithm on the
  // batched substrate: same union schedule (one lane's schedule *is* the
  // union), same wire records, same counters.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 21});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const VertexId source = 1;

  const DeltaSsspResult single =
      DistributedDeltaSssp(dg, cluster, {.delta = 5}).run(source);
  const BatchSsspResult batched =
      DistributedBatchSssp(dg, cluster, {.delta = 5, .value_bits = 64})
          .run({source});

  ASSERT_EQ(batched.distances.size(), 1u);
  ASSERT_EQ(batched.distances[0], single.distances);
  EXPECT_EQ(batched.iterations, single.iterations);
  EXPECT_EQ(batched.buckets_processed, single.buckets_processed);
  EXPECT_EQ(batched.light_iterations, single.light_iterations);
  EXPECT_EQ(batched.heavy_iterations, single.heavy_iterations);
  EXPECT_EQ(batched.light_relaxations, single.light_relaxations);
  EXPECT_EQ(batched.heavy_relaxations, single.heavy_relaxations);
  EXPECT_EQ(batched.update_bytes_remote, single.update_bytes_remote);
  EXPECT_EQ(batched.reduce_bytes, single.reduce_bytes);
}

TEST(BatchSssp, NarrowLanesMatchWideLanesAndCompressIsBitExact) {
  // value_bits only changes the wire/packing, never the distances; the
  // bucket-bias variant only changes wire bytes.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 55});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const std::vector<VertexId> sources = pick_sources(8, g.num_vertices);

  const BatchSsspResult wide =
      DistributedBatchSssp(dg, cluster, {.delta = 5, .value_bits = 64})
          .run(sources);
  const BatchSsspResult narrow =
      DistributedBatchSssp(dg, cluster, {.delta = 5, .value_bits = 16})
          .run(sources);
  const BatchSsspResult packed =
      DistributedBatchSssp(dg, cluster,
                           {.delta = 5, .value_bits = 16, .compress = true})
          .run(sources);
  ASSERT_EQ(wide.distances, narrow.distances);
  ASSERT_EQ(wide.distances, packed.distances);
  // 16-bit lanes pack four distances per word: less update traffic than
  // one word per (vertex, lane).
  EXPECT_LT(narrow.update_bytes_remote, wide.update_bytes_remote);
  EXPECT_LT(narrow.reduce_bytes, wide.reduce_bytes);
}

TEST(BatchSssp, AllDelegatesAndNoDelegatesAgree) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 8});
  const std::vector<VertexId> sources = pick_sources(8, g.num_vertices);
  std::vector<std::vector<std::uint64_t>> first;
  for (const std::uint32_t th : {std::uint32_t{0}, std::uint32_t{16},
                                 std::uint32_t{1u << 20}}) {
    const auto spec = spec_of(2, 2);
    sim::Cluster cluster(spec);
    const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
    const BatchSsspResult r =
        DistributedBatchSssp(dg, cluster, {.delta = 6}).run(sources);
    if (first.empty()) {
      first = r.distances;
      expect_lanes_match_serial(g, r, sources, 6, "threshold sweep");
    } else {
      ASSERT_EQ(r.distances, first) << "threshold " << th;
    }
  }
}

TEST(BatchSssp, OverflowingLaneWidthThrows) {
  // 63 hashed-weight hops sum far past the 8-bit sentinel (255) for the
  // far end of the path; the run must refuse rather than alias.
  const graph::EdgeList g = graph::path_graph(64);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  DistributedBatchSssp sssp(dg, cluster, {.delta = 8, .value_bits = 8});
  EXPECT_THROW(sssp.run({0}), std::overflow_error);
  // The same run at 16 bits is fine (max distance < 65535).
  DistributedBatchSssp wide(dg, cluster, {.delta = 8, .value_bits = 16});
  const BatchSsspResult r = wide.run({0});
  expect_lanes_match_serial(g, r, {0}, 8, "widened");
}

TEST(BatchSssp, ValueWidthForPicksSafeWidths) {
  EXPECT_EQ(util::value_width_for(0), 8);
  EXPECT_EQ(util::value_width_for(254), 8);
  EXPECT_EQ(util::value_width_for(255), 16);  // sentinel must stay free
  EXPECT_EQ(util::value_width_for(65534), 16);
  EXPECT_EQ(util::value_width_for(65535), 32);
  EXPECT_EQ(util::value_width_for((1ULL << 32) - 2), 32);
  EXPECT_EQ(util::value_width_for((1ULL << 32) - 1), 64);
}

TEST(BatchSssp, RejectsBadArguments) {
  const graph::EdgeList g = graph::path_graph(8);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  DistributedBatchSssp sssp(dg, cluster);
  EXPECT_THROW(sssp.run({}), std::invalid_argument);
  EXPECT_THROW(sssp.run(std::vector<VertexId>(65, 0)), std::invalid_argument);
  EXPECT_THROW(sssp.run({1000}), std::out_of_range);
  EXPECT_THROW(
      DistributedBatchSssp(dg, cluster, BatchSsspOptions{.delta = 0}),
      std::invalid_argument);
  EXPECT_THROW(
      DistributedBatchSssp(dg, cluster, BatchSsspOptions{.value_bits = 24}),
      std::invalid_argument);
}

TEST(BatchSssp, StoredWeightsMatchSerialOracle) {
  graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 32});
  graph::assign_uniform_weights(g, 24, 13);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  ASSERT_TRUE(dg.weighted());
  const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
  const std::vector<VertexId> sources = pick_sources(8, g.num_vertices);

  const BatchSsspResult r =
      DistributedBatchSssp(dg, cluster, {.delta = 6}).run(sources);
  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const auto oracle = baseline::serial_delta_sssp(
        host.csr, std::span<const std::uint32_t>(host.weights),
        sources[lane], 6);
    ASSERT_EQ(r.distances[lane], oracle) << "lane " << lane;
  }
}

}  // namespace
}  // namespace dsbfs::core
