#include "comm/transport.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dsbfs::comm {
namespace {

sim::ClusterSpec spec_2x2() {
  sim::ClusterSpec s;
  s.num_ranks = 2;
  s.gpus_per_rank = 2;
  return s;
}

TEST(Transport, SendThenRecv) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1, 2, 3});
  const auto got = t.recv(1, 0, kTagUser);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Transport, RecvBlocksUntilSend) {
  Transport t(spec_2x2());
  std::vector<std::uint64_t> got;
  std::thread receiver([&] { got = t.recv(2, 3, kTagUser); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.send(3, 2, kTagUser, {42});
  receiver.join();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{42}));
}

TEST(Transport, FifoPerSourceAndTag) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1});
  t.send(0, 1, kTagUser, {2});
  t.send(0, 1, kTagUser, {3});
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 1u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 2u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 3u);
}

TEST(Transport, TagsIsolateMessageStreams) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {10});
  t.send(0, 1, kTagUser + 1, {20});
  // Receive in reverse tag order.
  EXPECT_EQ(t.recv(1, 0, kTagUser + 1)[0], 20u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 10u);
}

TEST(Transport, SourcesIsolateMessageStreams) {
  Transport t(spec_2x2());
  t.send(0, 3, kTagUser, {100});
  t.send(2, 3, kTagUser, {200});
  EXPECT_EQ(t.recv(3, 2, kTagUser)[0], 200u);
  EXPECT_EQ(t.recv(3, 0, kTagUser)[0], 100u);
}

TEST(Transport, Probe) {
  Transport t(spec_2x2());
  EXPECT_FALSE(t.probe(1, 0, kTagUser));
  t.send(0, 1, kTagUser, {1});
  EXPECT_TRUE(t.probe(1, 0, kTagUser));
  t.recv(1, 0, kTagUser);
  EXPECT_FALSE(t.probe(1, 0, kTagUser));
}

TEST(Transport, EmptyPayloadAllowed) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {});
  EXPECT_TRUE(t.recv(1, 0, kTagUser).empty());
}

TEST(Transport, CountersSplitByLocality) {
  // GPUs 0,1 are rank 0; GPUs 2,3 are rank 1.
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1, 2});       // same rank: 16 bytes
  t.send(0, 2, kTagUser, {1, 2, 3});    // cross rank: 24 bytes
  EXPECT_EQ(t.bytes_same_rank(), 16u);
  EXPECT_EQ(t.bytes_cross_rank(), 24u);
  EXPECT_EQ(t.messages_sent(), 2u);
  t.reset_counters();
  EXPECT_EQ(t.messages_sent(), 0u);
}

TEST(Transport, EndpointRangeChecked) {
  Transport t(spec_2x2());
  EXPECT_THROW(t.send(0, 99, kTagUser, {}), std::out_of_range);
  EXPECT_THROW(t.send(-1, 0, kTagUser, {}), std::out_of_range);
}

TEST(Transport, BarrierReleasesAllTogether) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int g = 0; g < 4; ++g) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      t.barrier();
      after.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(before.load(), 4);
  EXPECT_EQ(after.load(), 4);
}

TEST(Transport, BarrierIsReusable) {
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::thread> threads;
    for (int g = 0; g < 3; ++g) {
      threads.emplace_back([&] { t.barrier(); });
    }
    for (auto& th : threads) th.join();
  }
  SUCCEED();
}

TEST(Transport, ConcurrentPairwiseStress) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 2;
  Transport t(spec);
  const int p = spec.total_gpus();
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> checksum{0};
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      // Everyone sends 50 messages to everyone, then receives.
      for (int round = 0; round < 50; ++round) {
        for (int o = 0; o < p; ++o) {
          if (o == g) continue;
          t.send(g, o, kTagUser,
                 {static_cast<std::uint64_t>(g * 1000 + round)});
        }
      }
      for (int round = 0; round < 50; ++round) {
        for (int o = 0; o < p; ++o) {
          if (o == g) continue;
          const auto m = t.recv(g, o, kTagUser);
          checksum.fetch_add(m[0]);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every message (g*1000 + round) received exactly once by p-1 receivers.
  std::uint64_t expected = 0;
  for (int g = 0; g < p; ++g) {
    for (int round = 0; round < 50; ++round) {
      expected += static_cast<std::uint64_t>(g * 1000 + round) *
                  static_cast<std::uint64_t>(p - 1);
    }
  }
  EXPECT_EQ(checksum.load(), expected);
}

}  // namespace
}  // namespace dsbfs::comm
