#include "comm/transport.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <thread>

namespace dsbfs::comm {
namespace {

sim::ClusterSpec spec_2x2() {
  sim::ClusterSpec s;
  s.num_ranks = 2;
  s.gpus_per_rank = 2;
  return s;
}

TEST(Transport, SendThenRecv) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1, 2, 3});
  const auto got = t.recv(1, 0, kTagUser);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Transport, RecvBlocksUntilSend) {
  Transport t(spec_2x2());
  std::vector<std::uint64_t> got;
  std::thread receiver([&] { got = t.recv(2, 3, kTagUser); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.send(3, 2, kTagUser, {42});
  receiver.join();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{42}));
}

TEST(Transport, FifoPerSourceAndTag) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1});
  t.send(0, 1, kTagUser, {2});
  t.send(0, 1, kTagUser, {3});
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 1u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 2u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 3u);
}

TEST(Transport, TagsIsolateMessageStreams) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {10});
  t.send(0, 1, kTagUser + 1, {20});
  // Receive in reverse tag order.
  EXPECT_EQ(t.recv(1, 0, kTagUser + 1)[0], 20u);
  EXPECT_EQ(t.recv(1, 0, kTagUser)[0], 10u);
}

TEST(Transport, SourcesIsolateMessageStreams) {
  Transport t(spec_2x2());
  t.send(0, 3, kTagUser, {100});
  t.send(2, 3, kTagUser, {200});
  EXPECT_EQ(t.recv(3, 2, kTagUser)[0], 200u);
  EXPECT_EQ(t.recv(3, 0, kTagUser)[0], 100u);
}

TEST(Transport, Probe) {
  Transport t(spec_2x2());
  EXPECT_FALSE(t.probe(1, 0, kTagUser));
  t.send(0, 1, kTagUser, {1});
  EXPECT_TRUE(t.probe(1, 0, kTagUser));
  t.recv(1, 0, kTagUser);
  EXPECT_FALSE(t.probe(1, 0, kTagUser));
}

TEST(Transport, EmptyPayloadAllowed) {
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {});
  EXPECT_TRUE(t.recv(1, 0, kTagUser).empty());
}

TEST(Transport, CountersSplitByLocality) {
  // GPUs 0,1 are rank 0; GPUs 2,3 are rank 1.
  Transport t(spec_2x2());
  t.send(0, 1, kTagUser, {1, 2});       // same rank: 16 bytes
  t.send(0, 2, kTagUser, {1, 2, 3});    // cross rank: 24 bytes
  EXPECT_EQ(t.bytes_same_rank(), 16u);
  EXPECT_EQ(t.bytes_cross_rank(), 24u);
  EXPECT_EQ(t.messages_sent(), 2u);
  t.reset_counters();
  EXPECT_EQ(t.messages_sent(), 0u);
}

TEST(Transport, EndpointRangeChecked) {
  Transport t(spec_2x2());
  EXPECT_THROW(t.send(0, 99, kTagUser, {}), std::out_of_range);
  EXPECT_THROW(t.send(-1, 0, kTagUser, {}), std::out_of_range);
}

TEST(Transport, BarrierReleasesAllTogether) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int g = 0; g < 4; ++g) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      t.barrier();
      after.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(before.load(), 4);
  EXPECT_EQ(after.load(), 4);
}

TEST(Transport, BarrierIsReusable) {
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::thread> threads;
    for (int g = 0; g < 3; ++g) {
      threads.emplace_back([&] { t.barrier(); });
    }
    for (auto& th : threads) th.join();
  }
  SUCCEED();
}

TEST(Transport, ConcurrentPairwiseStress) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 2;
  Transport t(spec);
  const int p = spec.total_gpus();
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> checksum{0};
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      // Everyone sends 50 messages to everyone, then receives.
      for (int round = 0; round < 50; ++round) {
        for (int o = 0; o < p; ++o) {
          if (o == g) continue;
          t.send(g, o, kTagUser,
                 {static_cast<std::uint64_t>(g * 1000 + round)});
        }
      }
      for (int round = 0; round < 50; ++round) {
        for (int o = 0; o < p; ++o) {
          if (o == g) continue;
          const auto m = t.recv(g, o, kTagUser);
          checksum.fetch_add(m[0]);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every message (g*1000 + round) received exactly once by p-1 receivers.
  std::uint64_t expected = 0;
  for (int g = 0; g < p; ++g) {
    for (int round = 0; round < 50; ++round) {
      expected += static_cast<std::uint64_t>(g * 1000 + round) *
                  static_cast<std::uint64_t>(p - 1);
    }
  }
  EXPECT_EQ(checksum.load(), expected);
}

// ---- recv watchdog --------------------------------------------------------

TEST(TransportWatchdog, TimeoutNamesLinkAndMailboxContents) {
  Transport t(spec_2x2());
  t.set_recv_timeout_ms(50);
  t.send(0, 1, kTagUser, {7});      // queued under a different (from, tag)
  t.send(3, 1, kTagUser + 1, {8});  // and another
  try {
    t.recv(1, 2, kTagControl);
    FAIL() << "watchdog did not fire";
  } catch (const TransportError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("endpoint 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag=16"), std::string::npos) << msg;
    // The diagnostic lists what *is* queued, the first question a deadlock
    // post-mortem asks.
    EXPECT_NE(msg.find("(from=0, tag=24) x1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(from=3, tag=25) x1"), std::string::npos) << msg;
  }
}

TEST(TransportWatchdog, EmptyMailboxSaysSo) {
  Transport t(spec_2x2());
  t.set_recv_timeout_ms(50);
  try {
    t.recv(0, 1, kTagUser);
    FAIL() << "watchdog did not fire";
  } catch (const TransportError& e) {
    EXPECT_NE(std::string(e.what()).find("no messages"), std::string::npos);
  }
}

// ---- fault injection ------------------------------------------------------
// kTagExchangeRemote is on the faultable data plane; kTagUser and the mask/
// collective tags model a reliable channel and must never be touched.

TEST(TransportFaults, DropLeavesLostTombstone) {
  sim::FaultPlan plan({.drop_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  EXPECT_TRUE(t.lossy());
  t.send(0, 1, kTagExchangeRemote, {1, 2, 3});
  const Message m = t.recv_message(1, 0, kTagExchangeRemote);
  EXPECT_TRUE(m.lost);
  EXPECT_TRUE(m.words.empty());
  const auto log = plan.log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, sim::FaultKind::kDrop);
  EXPECT_EQ(log[0].from, 0);
  EXPECT_EQ(log[0].to, 1);
}

TEST(TransportFaults, UnguardedRecvRefusesLostFrame) {
  sim::FaultPlan plan({.drop_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  t.send(0, 1, kTagExchangeRemote, {1});
  EXPECT_THROW(t.recv(1, 0, kTagExchangeRemote), TransportError);
}

TEST(TransportFaults, ControlPlaneIsNeverFaulted) {
  sim::FaultPlan plan({.drop_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  for (const int tag : {static_cast<int>(kTagMaskLocal),
                        static_cast<int>(kTagControl),
                        static_cast<int>(kTagUser), kTagUser + kTagBlock}) {
    t.send(0, 1, tag, {9});
    EXPECT_EQ(t.recv(1, 0, tag), (std::vector<std::uint64_t>{9})) << tag;
  }
  EXPECT_TRUE(plan.log().empty());
}

TEST(TransportFaults, CorruptFlipsExactlyOneBit) {
  sim::FaultPlan plan({.corrupt_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  const std::vector<std::uint64_t> sent = {0xdeadbeef, 0, ~0ULL};
  t.send(0, 1, kTagExchangeRemote, sent);
  const Message m = t.recv_message(1, 0, kTagExchangeRemote);
  ASSERT_EQ(m.words.size(), sent.size());
  int flipped = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    flipped += std::popcount(sent[i] ^ m.words[i]);
  }
  EXPECT_EQ(flipped, 1);
}

TEST(TransportFaults, DuplicateDeliversTheFrameTwice) {
  sim::FaultPlan plan({.duplicate_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  t.send(0, 1, kTagExchangeRemote, {5, 6});
  EXPECT_EQ(t.recv(1, 0, kTagExchangeRemote),
            (std::vector<std::uint64_t>{5, 6}));
  EXPECT_EQ(t.recv(1, 0, kTagExchangeRemote),
            (std::vector<std::uint64_t>{5, 6}));
  EXPECT_FALSE(t.probe(1, 0, kTagExchangeRemote));
}

TEST(TransportFaults, DelayCarriesTheModeledHoldback) {
  sim::FaultPlan plan({.delay_rate = 1.0, .delay_ns = 123'456});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  t.send(0, 1, kTagExchangeRemote, {1});
  const Message m = t.recv_message(1, 0, kTagExchangeRemote);
  EXPECT_FALSE(m.lost);
  EXPECT_EQ(m.delay_ns, 123'456u);
  EXPECT_EQ(m.words, (std::vector<std::uint64_t>{1}));
}

TEST(TransportFaults, RetransmitReplaysThePristineCopy) {
  // Half the physical attempts drop; the retained copy must eventually come
  // through intact.  Decisions are seeded hashes, so the loop is
  // deterministic (and 64 consecutive drops would need a 2^-64 seed).
  sim::FaultPlan plan({.seed = 3, .drop_rate = 0.5});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  const std::vector<std::uint64_t> sent = {11, 22, 33};
  t.send(0, 1, kTagExchangeRemote, sent);
  std::vector<std::uint64_t> got;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Message m = t.recv_message(1, 0, kTagExchangeRemote);
    if (!m.lost) {
      got = m.words;
      break;
    }
    ASSERT_TRUE(t.retransmit(0, 1, kTagExchangeRemote));
  }
  EXPECT_EQ(got, sent);
}

TEST(TransportFaults, RetransmitWithoutRetainedFrameFails) {
  sim::FaultPlan plan({.drop_rate = 0.5});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  EXPECT_FALSE(t.retransmit(0, 1, kTagExchangeRemote));
}

TEST(TransportFaults, PurgeClearsQueuesAndRetainedFrames) {
  sim::FaultPlan plan({.duplicate_rate = 1.0});
  Transport t(spec_2x2());
  t.set_fault_plan(&plan);
  t.send(0, 1, kTagExchangeRemote, {1});
  t.purge();
  EXPECT_FALSE(t.probe(1, 0, kTagExchangeRemote));
  EXPECT_FALSE(t.retransmit(0, 1, kTagExchangeRemote));
}

TEST(TransportFaults, CleanTransportKeepsHistoricByteAccounting) {
  // No plan installed: the wire must not allocate per-link state or change
  // any counter semantics (zero-cost-when-disabled at the transport layer).
  Transport t(spec_2x2());
  EXPECT_FALSE(t.lossy());
  t.send(0, 2, kTagExchangeRemote, {1, 2, 3});
  EXPECT_EQ(t.bytes_cross_rank(), 24u);
  EXPECT_EQ(t.recv(2, 0, kTagExchangeRemote),
            (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
}  // namespace dsbfs::comm
