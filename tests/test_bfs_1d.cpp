#include "baseline/bfs_1d.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::baseline {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

struct Case {
  const char* name;
  int ranks, gpus;
};

class Bfs1dTopologies : public ::testing::TestWithParam<Case> {};

TEST_P(Bfs1dTopologies, MatchesSerialOnRmat) {
  const Case c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 31});
  const auto csr = graph::build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  const auto expected = serial_bfs(csr, source);
  const Distributed1dResult got = bfs_1d(g, spec_of(c.ranks, c.gpus), source);
  EXPECT_EQ(got.distances, expected);
  EXPECT_GT(got.iterations, 1);
}

INSTANTIATE_TEST_SUITE_P(Topologies, Bfs1dTopologies,
                         ::testing::Values(Case{"p1", 1, 1}, Case{"p2", 2, 1},
                                           Case{"p4", 2, 2}, Case{"p6", 3, 2},
                                           Case{"p8", 4, 2}),
                         [](const auto& info) { return info.param.name; });

TEST(Bfs1d, MatchesSerialOnNamedGraphs) {
  for (const auto& g : {graph::path_graph(40), graph::star_graph(40),
                        graph::grid_graph(6, 7)}) {
    const auto expected = serial_bfs(graph::build_host_csr(g), 0);
    EXPECT_EQ(bfs_1d(g, spec_of(2, 2), 0).distances, expected);
  }
}

TEST(Bfs1d, ExchangesFrontierTraffic) {
  // 1D must push every cut edge's endpoint across GPUs: bytes grow with the
  // visited cut, the scalability problem delegates solve.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 32});
  const Distributed1dResult r = bfs_1d(g, spec_of(4, 1), 1);
  EXPECT_GT(r.bytes_exchanged, 0u);
  EXPECT_GT(r.edges_examined, 0u);
}

TEST(Bfs1d, UnreachableComponent) {
  const graph::EdgeList g = graph::two_cliques(6);
  const Distributed1dResult r = bfs_1d(g, spec_of(2, 1), 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_NE(r.distances[v], kUnvisited);
  for (VertexId v = 6; v < 12; ++v) EXPECT_EQ(r.distances[v], kUnvisited);
}

}  // namespace
}  // namespace dsbfs::baseline
