#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

/// BFS-tree (parents) output: the Graph500 deliverable the paper describes
/// building "with almost no extra cost" (Section VI-A3): local parents for
/// dd/dn/nd discoveries, a d-word min-reduction for delegates, one final
/// exchange for nn destinations.
namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

BfsResult run_with_parents(const graph::EdgeList& g, sim::ClusterSpec spec,
                           std::uint32_t th, VertexId source,
                           bool direction_optimized = true) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  BfsOptions options;
  options.compute_parents = true;
  options.direction_optimized = direction_optimized;
  DistributedBfs bfs(dg, cluster, options);
  return bfs.run(source);
}

void expect_valid_tree(const graph::EdgeList& g, VertexId source,
                       const BfsResult& r) {
  ASSERT_EQ(r.parents.size(), g.num_vertices);
  const auto report = validate_parents(g, source, r.distances, r.parents);
  ASSERT_TRUE(report.ok) << report.error;
}

TEST(BfsParents, PathTreeIsTheChain) {
  const graph::EdgeList g = graph::path_graph(12);
  const BfsResult r = run_with_parents(g, spec_of(2, 2), 4, 0);
  expect_valid_tree(g, 0, r);
  for (VertexId v = 1; v < 12; ++v) EXPECT_EQ(r.parents[v], v - 1);
  EXPECT_EQ(r.parents[0], 0u);
}

TEST(BfsParents, StarTreeAllPointAtCenter) {
  const graph::EdgeList g = graph::star_graph(40);
  const BfsResult r = run_with_parents(g, spec_of(2, 2), 4, 0);
  expect_valid_tree(g, 0, r);
  for (VertexId v = 1; v < 40; ++v) EXPECT_EQ(r.parents[v], 0u);
}

TEST(BfsParents, StarFromLeafRoutesViaDelegate) {
  // Leaf -> center (delegate) -> other leaves: exercises nd and dn parents.
  const graph::EdgeList g = graph::star_graph(40);
  const BfsResult r = run_with_parents(g, spec_of(2, 2), 4, 7);
  expect_valid_tree(g, 7, r);
  EXPECT_EQ(r.parents[0], 7u);
  for (VertexId v = 1; v < 40; ++v) {
    if (v == 7) continue;
    EXPECT_EQ(r.parents[v], 0u);
  }
}

TEST(BfsParents, UnreachedHaveNoParent) {
  const graph::EdgeList g = graph::two_cliques(6);
  const BfsResult r = run_with_parents(g, spec_of(2, 1), 4, 0);
  expect_valid_tree(g, 0, r);
  for (VertexId v = 6; v < 12; ++v) EXPECT_EQ(r.parents[v], kInvalidVertex);
}

TEST(BfsParents, DisabledByDefault) {
  const graph::EdgeList g = graph::path_graph(8);
  const auto spec = spec_of(1, 2);
  sim::Cluster cluster(spec);
  const auto dg = graph::build_distributed(g, spec, 4);
  DistributedBfs bfs(dg, cluster);  // default options
  EXPECT_TRUE(bfs.run(0).parents.empty());
}

struct ParentCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
  bool direction_optimized;
};

class BfsParentsSweep : public ::testing::TestWithParam<ParentCase> {};

TEST_P(BfsParentsSweep, RandomGraphsYieldValidTrees) {
  const ParentCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 81});
  const auto spec = spec_of(c.ranks, c.gpus);
  sim::Cluster cluster(spec);
  const auto dg = graph::build_distributed(g, spec, c.th);
  BfsOptions options;
  options.compute_parents = true;
  options.direction_optimized = c.direction_optimized;
  DistributedBfs bfs(dg, cluster, options);
  const graph::HostCsr csr = graph::build_host_csr(g);
  for (std::uint64_t k = 0; k < 3; ++k) {
    const VertexId source = bfs.sample_source(k);
    const BfsResult r = bfs.run(source);
    // Distances still exact,
    const auto expected = baseline::serial_bfs(csr, source);
    ASSERT_TRUE(validate_against_reference(r.distances, expected).ok);
    // and the tree valid.
    const auto report = validate_parents(g, source, r.distances, r.parents);
    ASSERT_TRUE(report.ok) << report.error << " source=" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsParentsSweep,
    ::testing::Values(ParentCase{"single", 1, 1, 16, true},
                      ParentCase{"quad_do", 2, 2, 16, true},
                      ParentCase{"quad_plain", 2, 2, 16, false},
                      ParentCase{"wide", 4, 2, 32, true},
                      ParentCase{"all_delegates", 2, 2, 0, true},
                      ParentCase{"no_delegates", 2, 2, 1u << 20, true}),
    [](const auto& info) { return info.param.name; });

TEST(BfsParents, ValidatorCatchesBrokenTrees) {
  const graph::EdgeList g = graph::path_graph(6);
  const BfsResult r = run_with_parents(g, spec_of(1, 1), 4, 0);
  // Wrong level parent.
  auto bad = r.parents;
  bad[3] = 1;  // level 1 parent for a level-3 vertex
  EXPECT_FALSE(validate_parents(g, 0, r.distances, bad).ok);
  // Non-edge parent.
  bad = r.parents;
  bad[3] = 5;  // 5 is not adjacent to 3... (5 at level 5? no: level check)
  EXPECT_FALSE(validate_parents(g, 0, r.distances, bad).ok);
  // Parent on unvisited vertex.
  graph::EdgeList cliques = graph::two_cliques(3);
  const BfsResult rc = run_with_parents(cliques, spec_of(1, 1), 4, 0);
  bad = rc.parents;
  bad[4] = 3;
  EXPECT_FALSE(validate_parents(cliques, 0, rc.distances, bad).ok);
  // Source not self-parented.
  bad = r.parents;
  bad[0] = 1;
  EXPECT_FALSE(validate_parents(g, 0, r.distances, bad).ok);
}

TEST(BfsParents, WebGraphLongTail) {
  graph::WebGraphLikeParams p;
  p.chain_length = 24;
  p.community_size = 48;
  const graph::EdgeList g = graph::webgraph_like(p);
  const BfsResult r = run_with_parents(g, spec_of(2, 2), 16, 0);
  expect_valid_tree(g, 0, r);
}

}  // namespace
}  // namespace dsbfs::core
