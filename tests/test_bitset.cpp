#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace dsbfs::util {
namespace {

TEST(Bitset, StartsEmpty) {
  AtomicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(Bitset, SetReturnsTrueOnlyOnFirstFlip) {
  AtomicBitset b(64);
  EXPECT_TRUE(b.set(7));
  EXPECT_FALSE(b.set(7));
  EXPECT_TRUE(b.test(7));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Bitset, SetAcrossWordBoundaries) {
  AtomicBitset b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(128));
}

TEST(Bitset, WordCountRounding) {
  EXPECT_EQ(AtomicBitset(0).word_count(), 0u);
  EXPECT_EQ(AtomicBitset(1).word_count(), 1u);
  EXPECT_EQ(AtomicBitset(64).word_count(), 1u);
  EXPECT_EQ(AtomicBitset(65).word_count(), 2u);
  EXPECT_EQ(AtomicBitset(65).byte_size(), 16u);
}

TEST(Bitset, OrWithMergesBits) {
  AtomicBitset a(200), b(200);
  a.set(3);
  a.set(150);
  b.set(150);
  b.set(199);
  a.or_with(b);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(150));
  EXPECT_TRUE(a.test(199));
  EXPECT_EQ(a.count(), 3u);
  // b unchanged
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, DiffIntoExtractsNewBits) {
  AtomicBitset next(128), prev(128), out(128);
  prev.set(1);
  prev.set(64);
  next.set(1);
  next.set(64);
  next.set(65);
  next.set(100);
  AtomicBitset::diff_into(next, prev, out);
  EXPECT_FALSE(out.test(1));
  EXPECT_FALSE(out.test(64));
  EXPECT_TRUE(out.test(65));
  EXPECT_TRUE(out.test(100));
  EXPECT_EQ(out.count(), 2u);
}

TEST(Bitset, DiffIntoOverwritesStaleOutput) {
  AtomicBitset next(64), prev(64), out(64);
  out.set(5);  // stale content must be cleared
  next.set(9);
  AtomicBitset::diff_into(next, prev, out);
  EXPECT_FALSE(out.test(5));
  EXPECT_TRUE(out.test(9));
}

TEST(Bitset, ForEachSetVisitsExactlySetBits) {
  AtomicBitset b(300);
  const std::vector<std::size_t> bits{0, 1, 63, 64, 65, 127, 128, 255, 299};
  for (const auto i : bits) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);  // ascending order by construction
}

TEST(Bitset, ClearAllResets) {
  AtomicBitset b(128);
  b.set(2);
  b.set(127);
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, CopyIsDeep) {
  AtomicBitset a(64);
  a.set(10);
  AtomicBitset b = a;
  b.set(20);
  EXPECT_TRUE(a.test(10));
  EXPECT_FALSE(a.test(20));
  EXPECT_TRUE(b.test(10));
  EXPECT_TRUE(b.test(20));
}

TEST(Bitset, EqualityComparesContent) {
  AtomicBitset a(64), b(64), c(65);
  a.set(3);
  b.set(3);
  EXPECT_TRUE(a == b);
  b.set(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);  // different sizes
}

TEST(Bitset, WordLevelAccess) {
  AtomicBitset b(128);
  b.set_word(1, 0xff00ULL);
  EXPECT_TRUE(b.test(64 + 8));
  EXPECT_EQ(b.word(1), 0xff00ULL);
  b.or_word(1, 0x1ULL);
  EXPECT_EQ(b.word(1), 0xff01ULL);
}

TEST(Bitset, ConcurrentSetsAreLossless) {
  // The delegate visit kernels set bits from several GPU threads at once;
  // every set must land.
  AtomicBitset b(1 << 16);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < (1 << 16);
           i += kThreads) {
        b.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.count(), static_cast<std::size_t>(1 << 16));
}

TEST(Bitset, ConcurrentSetSameBitsCountOnce) {
  AtomicBitset b(1024);
  std::atomic<std::size_t> first_flips{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::size_t mine = 0;
      for (std::size_t i = 0; i < 1024; ++i) mine += b.set(i) ? 1 : 0;
      first_flips.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one thread wins each bit.
  EXPECT_EQ(first_flips.load(), 1024u);
  EXPECT_EQ(b.count(), 1024u);
}

class BitsetSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizes, CountMatchesSetPattern) {
  const std::size_t n = GetParam();
  AtomicBitset b(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    b.set(i);
    ++expected;
  }
  EXPECT_EQ(b.count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000, 4096));

}  // namespace
}  // namespace dsbfs::util
