#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include "util/lane_value_slab.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace dsbfs::util {
namespace {

TEST(Bitset, StartsEmpty) {
  AtomicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(Bitset, SetReturnsTrueOnlyOnFirstFlip) {
  AtomicBitset b(64);
  EXPECT_TRUE(b.set(7));
  EXPECT_FALSE(b.set(7));
  EXPECT_TRUE(b.test(7));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Bitset, SetAcrossWordBoundaries) {
  AtomicBitset b(130);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(128));
}

TEST(Bitset, WordCountRounding) {
  EXPECT_EQ(AtomicBitset(0).word_count(), 0u);
  EXPECT_EQ(AtomicBitset(1).word_count(), 1u);
  EXPECT_EQ(AtomicBitset(64).word_count(), 1u);
  EXPECT_EQ(AtomicBitset(65).word_count(), 2u);
  EXPECT_EQ(AtomicBitset(65).byte_size(), 16u);
}

TEST(Bitset, OrWithMergesBits) {
  AtomicBitset a(200), b(200);
  a.set(3);
  a.set(150);
  b.set(150);
  b.set(199);
  a.or_with(b);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(150));
  EXPECT_TRUE(a.test(199));
  EXPECT_EQ(a.count(), 3u);
  // b unchanged
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, DiffIntoExtractsNewBits) {
  AtomicBitset next(128), prev(128), out(128);
  prev.set(1);
  prev.set(64);
  next.set(1);
  next.set(64);
  next.set(65);
  next.set(100);
  AtomicBitset::diff_into(next, prev, out);
  EXPECT_FALSE(out.test(1));
  EXPECT_FALSE(out.test(64));
  EXPECT_TRUE(out.test(65));
  EXPECT_TRUE(out.test(100));
  EXPECT_EQ(out.count(), 2u);
}

TEST(Bitset, DiffIntoOverwritesStaleOutput) {
  AtomicBitset next(64), prev(64), out(64);
  out.set(5);  // stale content must be cleared
  next.set(9);
  AtomicBitset::diff_into(next, prev, out);
  EXPECT_FALSE(out.test(5));
  EXPECT_TRUE(out.test(9));
}

TEST(Bitset, ForEachSetVisitsExactlySetBits) {
  AtomicBitset b(300);
  const std::vector<std::size_t> bits{0, 1, 63, 64, 65, 127, 128, 255, 299};
  for (const auto i : bits) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);  // ascending order by construction
}

TEST(Bitset, ClearAllResets) {
  AtomicBitset b(128);
  b.set(2);
  b.set(127);
  b.clear_all();
  EXPECT_TRUE(b.none());
}

TEST(Bitset, CopyIsDeep) {
  AtomicBitset a(64);
  a.set(10);
  AtomicBitset b = a;
  b.set(20);
  EXPECT_TRUE(a.test(10));
  EXPECT_FALSE(a.test(20));
  EXPECT_TRUE(b.test(10));
  EXPECT_TRUE(b.test(20));
}

TEST(Bitset, EqualityComparesContent) {
  AtomicBitset a(64), b(64), c(65);
  a.set(3);
  b.set(3);
  EXPECT_TRUE(a == b);
  b.set(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);  // different sizes
}

TEST(Bitset, WordLevelAccess) {
  AtomicBitset b(128);
  b.set_word(1, 0xff00ULL);
  EXPECT_TRUE(b.test(64 + 8));
  EXPECT_EQ(b.word(1), 0xff00ULL);
  b.or_word(1, 0x1ULL);
  EXPECT_EQ(b.word(1), 0xff01ULL);
}

TEST(Bitset, ConcurrentSetsAreLossless) {
  // The delegate visit kernels set bits from several GPU threads at once;
  // every set must land.
  AtomicBitset b(1 << 16);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < (1 << 16);
           i += kThreads) {
        b.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.count(), static_cast<std::size_t>(1 << 16));
}

TEST(Bitset, ConcurrentSetSameBitsCountOnce) {
  AtomicBitset b(1024);
  std::atomic<std::size_t> first_flips{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::size_t mine = 0;
      for (std::size_t i = 0; i < 1024; ++i) mine += b.set(i) ? 1 : 0;
      first_flips.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one thread wins each bit.
  EXPECT_EQ(first_flips.load(), 1024u);
  EXPECT_EQ(b.count(), 1024u);
}

class BitsetSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetSizes, CountMatchesSetPattern) {
  const std::size_t n = GetParam();
  AtomicBitset b(n);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    b.set(i);
    ++expected;
  }
  EXPECT_EQ(b.count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           1000, 4096));

// ---- lane-generalized interface (batched MS-BFS substrate) ---------------

TEST(LaneBitset, WidthOneIsTheClassicMask) {
  LaneBitset b(100);  // default width 1
  EXPECT_EQ(b.lane_bits(), 1);
  EXPECT_EQ(b.lane_mask(), 1u);
  EXPECT_EQ(b.word_count(), 2u);  // identical layout to AtomicBitset(100)
  b.set(42);
  EXPECT_EQ(b.lanes(42), 1u);
  EXPECT_EQ(b.or_lanes(7, 1), 0u);
  EXPECT_TRUE(b.test(7));
}

TEST(LaneBitset, LayoutPacksLanesWithoutStraddling) {
  for (const int w : {1, 8, 32, 64}) {
    LaneBitset b(100, w);
    EXPECT_EQ(b.lane_bits(), w);
    EXPECT_EQ(b.word_count(), (100u * static_cast<std::size_t>(w) + 63) / 64);
    EXPECT_EQ(b.byte_size(), b.word_count() * 8);
  }
}

TEST(LaneBitset, OrLanesReturnsPreviousWord) {
  LaneBitset b(10, 8);
  EXPECT_EQ(b.or_lanes(3, 0b0011), 0u);       // first touch
  EXPECT_EQ(b.or_lanes(3, 0b0110), 0b0011u);  // previous word back
  EXPECT_EQ(b.lanes(3), 0b0111u);
  EXPECT_EQ(b.lanes(2), 0u);  // neighbors untouched
  EXPECT_EQ(b.lanes(4), 0u);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_EQ(b.count_nonzero_items(), 1u);
}

TEST(LaneBitset, FullWidthLanesRoundTrip) {
  LaneBitset b(5, 64);
  const std::uint64_t word = 0xdeadbeefcafef00dULL;
  EXPECT_EQ(b.or_lanes(4, word), 0u);
  EXPECT_EQ(b.lanes(4), word);
  EXPECT_EQ(b.lane_mask(), ~0ULL);
}

TEST(LaneBitset, WordOpsAreLaneAgnostic) {
  // The two-phase mask reduce ORs words; lanes must merge transparently.
  LaneBitset a(6, 8), b(6, 8), diff(6, 8);
  a.or_lanes(0, 0x0f);
  b.or_lanes(0, 0xf0);
  b.or_lanes(5, 0x01);
  a.or_with(b);
  EXPECT_EQ(a.lanes(0), 0xffu);
  EXPECT_EQ(a.lanes(5), 0x01u);
  LaneBitset prev(6, 8);
  prev.or_lanes(0, 0x0f);
  LaneBitset::diff_into(a, prev, diff);
  EXPECT_EQ(diff.lanes(0), 0xf0u);
  EXPECT_EQ(diff.lanes(5), 0x01u);
}

TEST(LaneBitset, ForEachNonzeroLanesVisitsOccupiedItems) {
  LaneBitset b(50, 32);
  b.or_lanes(1, 5);
  b.or_lanes(49, 1u << 31);
  std::vector<std::pair<std::size_t, std::uint64_t>> seen;
  b.for_each_nonzero_lanes(
      [&](std::size_t v, std::uint64_t w) { seen.emplace_back(v, w); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::size_t, std::uint64_t>{1, 5}));
  EXPECT_EQ(seen[1],
            (std::pair<std::size_t, std::uint64_t>{49, 1ULL << 31}));
}

TEST(LaneBitset, ConcurrentOrLanesLossless) {
  // Two threads OR disjoint lane sets of the same items; every bit must
  // land and first-touch must be claimed exactly once per item.
  LaneBitset b(256, 8);
  std::atomic<int> first_touches{0};
  auto worker = [&](std::uint64_t lanes) {
    for (std::size_t v = 0; v < 256; ++v) {
      if (b.or_lanes(v, lanes) == 0) first_touches.fetch_add(1);
    }
  };
  std::thread t1(worker, 0x0f);
  std::thread t2(worker, 0xf0);
  t1.join();
  t2.join();
  for (std::size_t v = 0; v < 256; ++v) EXPECT_EQ(b.lanes(v), 0xffu);
  EXPECT_EQ(first_touches.load(), 256);
}

TEST(LaneBitset, ClearLanesSweepsOnlyTheNamedLanes) {
  // 8-bit lanes, 100 items: set a distinct pattern per item, clear lanes
  // {0, 5}, and verify the other lanes survive untouched item by item.
  LaneBitset b(100, 8);
  for (std::size_t v = 0; v < 100; ++v) {
    b.or_lanes(v, (v % 2 == 0) ? 0x21u : 0xc1u);  // all include lane 0
  }
  const std::size_t cleared = b.clear_lanes((1u << 0) | (1u << 5));
  // Every item loses lane 0; the even items lose lane 5 too.
  EXPECT_EQ(cleared, 100u + 50u);
  for (std::size_t v = 0; v < 100; ++v) {
    EXPECT_EQ(b.lanes(v), (v % 2 == 0) ? 0x00u : 0xc0u) << "item " << v;
  }
  // Clearing lanes that hold no bits is a no-op.
  EXPECT_EQ(b.clear_lanes(0x3f), 0u);
  // Bits outside the lane mask are ignored entirely.
  LaneBitset w1(64, 1);
  for (std::size_t v = 0; v < 64; ++v) w1.or_lanes(v, 1);
  EXPECT_EQ(w1.clear_lanes(~1ULL), 0u);
  EXPECT_EQ(w1.count(), 64u);
  EXPECT_EQ(w1.clear_lanes(1), 64u);
  EXPECT_TRUE(w1.none());
}

TEST(LaneBitset, ClearLanesFullWidth) {
  LaneBitset b(5, 64);
  b.or_lanes(2, ~0ULL);
  b.or_lanes(4, 1ULL << 63);
  EXPECT_EQ(b.clear_lanes(1ULL << 63), 2u);
  EXPECT_EQ(b.lanes(2), ~0ULL >> 1);
  EXPECT_EQ(b.lanes(4), 0u);
}

TEST(LaneBitset, LaneWidthForQuantizesToSupportedWidths) {
  EXPECT_EQ(lane_width_for(1), 1);
  EXPECT_EQ(lane_width_for(2), 8);
  EXPECT_EQ(lane_width_for(3), 8);
  EXPECT_EQ(lane_width_for(8), 8);
  EXPECT_EQ(lane_width_for(9), 32);
  EXPECT_EQ(lane_width_for(32), 32);
  EXPECT_EQ(lane_width_for(33), 64);
  EXPECT_EQ(lane_width_for(64), 64);
}

TEST(LaneValueSlab, ResizePacksLanesAndFillRaisesToInfinity) {
  LaneValueSlab s;
  s.resize(10, 12, 16);  // 12 lanes of 16 bits: 4 lanes/word, 3 words/item
  EXPECT_EQ(s.items(), 10u);
  EXPECT_EQ(s.lanes(), 12);
  EXPECT_EQ(s.value_bits(), 16);
  EXPECT_EQ(s.lanes_per_word(), 4);
  EXPECT_EQ(s.groups_per_item(), 3u);
  EXPECT_EQ(s.value_mask(), 0xFFFFu);
  EXPECT_EQ(s.word_count(), 30u);
  EXPECT_EQ(s.byte_size(), 240u);
  // resize zero-fills (the sum identity); min-combined users raise to the
  // sentinel explicitly.
  EXPECT_EQ(s.get(0, 0), 0u);
  s.fill(s.value_mask());
  for (std::size_t i = 0; i < 10; ++i) {
    for (int lane = 0; lane < 12; ++lane) {
      EXPECT_TRUE(s.is_infinite(i, lane));
      EXPECT_EQ(s.get(i, lane), s.value_mask());
    }
  }
}

TEST(LaneValueSlab, MinLaneKeepsSmallestAndReportsImprovement) {
  LaneValueSlab s;
  s.resize(4, 8, 8);
  s.fill(s.value_mask());
  EXPECT_TRUE(s.min_lane(2, 3, 100));
  EXPECT_FALSE(s.min_lane(2, 3, 100));  // equal is not an improvement
  EXPECT_FALSE(s.min_lane(2, 3, 200));
  EXPECT_TRUE(s.min_lane(2, 3, 99));
  EXPECT_EQ(s.get(2, 3), 99u);
  // Neighboring lanes in the same word are untouched.
  EXPECT_TRUE(s.is_infinite(2, 2));
  EXPECT_TRUE(s.is_infinite(2, 4));
}

TEST(LaneValueSlab, AddLaneWrapsWithinTheLaneWidth) {
  LaneValueSlab s;
  s.resize(2, 4, 16);
  s.add_lane(0, 1, 70000);  // wraps mod 2^16
  EXPECT_EQ(s.get(0, 1), 70000u & 0xFFFF);
  // Neighboring lanes in the same word keep their zero identity.
  EXPECT_EQ(s.get(0, 0), 0u);
  EXPECT_EQ(s.get(0, 2), 0u);
}

TEST(LaneValueSlab, WordLevelMinMatchesLaneLevel) {
  LaneValueSlab a, b;
  a.resize(3, 8, 8);
  b.resize(3, 8, 8);
  a.fill(a.value_mask());
  b.fill(b.value_mask());
  for (int lane = 0; lane < 8; ++lane) {
    a.set(1, lane, static_cast<std::uint64_t>(10 + lane));
    b.min_lane(1, lane, static_cast<std::uint64_t>(10 + lane));
  }
  // Folding a's packed word into a fresh slab reproduces per-lane mins,
  // and the improved-lane mask flags exactly the lanes that moved.
  LaneValueSlab c;
  c.resize(3, 8, 8);
  c.fill(c.value_mask());
  c.set(1, 2, 5);  // already better than a's 12
  const std::uint64_t improved = c.min_item_word(1, 0, a.word(1 * 1));
  EXPECT_EQ(improved, 0xFFu & ~(1u << 2));
  for (int lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(c.get(1, lane), lane == 2 ? 5u : 10u + lane);
  }
  EXPECT_EQ(a, b);
}

TEST(LaneValueSlab, StaticLaneMinAndAddOperateLaneWise) {
  const std::uint64_t x = LaneValueSlab::replicate(7, 16);
  const std::uint64_t y = LaneValueSlab::replicate(9, 16);
  EXPECT_EQ(LaneValueSlab::lane_min_word(x, y, 16), x);
  EXPECT_EQ(LaneValueSlab::lane_add_word(x, y, 16),
            LaneValueSlab::replicate(16, 16));
  // Sentinel lanes stay sentinel under min.
  const std::uint64_t inf = ~0ULL;
  EXPECT_EQ(LaneValueSlab::lane_min_word(inf, y, 16), y);
  // Replicate masks wide inputs down to the lane width.
  EXPECT_EQ(LaneValueSlab::replicate(0x1FFFF, 16),
            LaneValueSlab::replicate(0xFFFF, 16));
}

TEST(LaneValueSlab, FillAndEqualityCoverAllWidths) {
  for (const int bits : {8, 16, 32, 64}) {
    LaneValueSlab s;
    s.resize(5, 3, bits);
    s.fill(1);
    for (std::size_t i = 0; i < 5; ++i) {
      for (int lane = 0; lane < 3; ++lane) EXPECT_EQ(s.get(i, lane), 1u);
    }
    LaneValueSlab t = s;  // copyable despite atomic words
    EXPECT_EQ(s, t);
    t.set(4, 2, 2);
    EXPECT_FALSE(s == t);
  }
}

}  // namespace
}  // namespace dsbfs::util
