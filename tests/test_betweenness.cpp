#include "core/betweenness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "baseline/brandes.hpp"
#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

std::vector<VertexId> pick_sources(int width, VertexId num_vertices) {
  std::vector<VertexId> sources;
  for (int i = 0; i < width; ++i) {
    sources.push_back((static_cast<VertexId>(i) * 37 + 1) % num_vertices);
  }
  return sources;
}

/// Distributed scores must equal the serial oracle's bit for bit -- the
/// reverse fold replays the identical double-addition sequence.
void expect_scores_bit_exact(const graph::EdgeList& g,
                             const BetweennessResult& r,
                             const std::vector<VertexId>& sources,
                             const char* label) {
  const graph::HostCsr host = graph::build_host_csr(g);
  const std::vector<double> oracle = baseline::serial_brandes(
      host, std::span<const VertexId>(sources));
  ASSERT_EQ(r.scores.size(), oracle.size()) << label;
  for (VertexId v = 0; v < oracle.size(); ++v) {
    ASSERT_EQ(r.scores[v], oracle[v]) << label << " vertex " << v;
  }
}

TEST(SerialBrandes, PassStateIsConsistentOnNamedGraphs) {
  for (const auto& [g, source] :
       {std::pair{graph::star_graph(12), VertexId{3}},
        std::pair{graph::path_graph(9), VertexId{0}},
        std::pair{graph::grid_graph(5, 4), VertexId{7}}}) {
    const graph::HostCsr host = graph::build_host_csr(g);
    const baseline::BrandesPass pass =
        baseline::serial_brandes_pass(host, source);
    // Depths agree with plain BFS; the source has one path to itself.
    EXPECT_EQ(pass.depth, baseline::serial_bfs(host, source));
    EXPECT_EQ(pass.sigma[source], 1u);
    EXPECT_EQ(pass.delta[source] >= 0.0, true);
    for (VertexId v = 0; v < host.num_rows(); ++v) {
      if (pass.depth[v] == kUnvisited) {
        EXPECT_EQ(pass.sigma[v], 0u);
        EXPECT_EQ(pass.delta[v], 0.0);
      } else {
        EXPECT_GE(pass.sigma[v], 1u);
      }
    }
  }
}

TEST(SerialBrandes, PathGraphScoresAreClosedForm) {
  // On a path 0-1-...-n-1 with all sources, bc[v] counts ordered reachable
  // pairs routed through v: 2 * (v) * (n - 1 - v).
  const int n = 9;
  const graph::EdgeList g = graph::path_graph(n);
  const graph::HostCsr host = graph::build_host_csr(g);
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  const auto bc =
      baseline::serial_brandes(host, std::span<const VertexId>(all));
  for (int v = 0; v < n; ++v) {
    EXPECT_DOUBLE_EQ(bc[static_cast<std::size_t>(v)],
                     2.0 * v * (n - 1 - v))
        << v;
  }
}

struct BcCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
  int width;
};

class BetweennessSweep : public ::testing::TestWithParam<BcCase> {};

TEST_P(BetweennessSweep, RmatScoresMatchSerialBrandesBitExact) {
  const BcCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 91});
  const auto spec = spec_of(c.ranks, c.gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, c.th);
  const std::vector<VertexId> sources = pick_sources(c.width, g.num_vertices);
  BetweennessCentrality bc(dg, cluster);
  const BetweennessResult r = bc.run(sources);
  expect_scores_bit_exact(g, r, sources, c.name);
  EXPECT_GT(r.forward_iterations, 0);
  EXPECT_GT(r.reverse_iterations, 0);
  EXPECT_GT(r.max_depth, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BetweennessSweep,
    ::testing::Values(BcCase{"single_gpu", 1, 1, 16, 8},
                      BcCase{"quad_w1", 2, 2, 16, 1},
                      BcCase{"quad_w8", 2, 2, 16, 8},
                      BcCase{"quad_w64", 2, 2, 16, 64},
                      BcCase{"all_delegates", 2, 2, 0, 8},
                      BcCase{"no_delegates", 2, 2, 1u << 20, 8},
                      BcCase{"wide_cluster", 4, 2, 16, 8}),
    [](const auto& info) { return info.param.name; });

TEST(Betweenness, GridScoresMatchAndTopologySweepIsBitExact) {
  const graph::EdgeList g = graph::grid_graph(8, 6);
  const std::vector<VertexId> sources = pick_sources(16, g.num_vertices);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  std::vector<double> first;
  for (const auto topology :
       {sim::ExchangeTopology::kFlat, sim::ExchangeTopology::kHierarchical,
        sim::ExchangeTopology::kButterfly}) {
    BetweennessCentrality bc(dg, cluster,
                             {.exchange_topology = topology});
    const BetweennessResult r = bc.run(sources);
    expect_scores_bit_exact(g, r, sources, "grid");
    if (first.empty()) {
      first = r.scores;
    } else {
      ASSERT_EQ(r.scores, first);
    }
  }
}

TEST(Betweenness, DisconnectedVerticesScoreZero) {
  graph::EdgeList g;
  g.num_vertices = 10;
  g.add(0, 1);
  g.add(1, 0);
  g.add(1, 2);
  g.add(2, 1);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  BetweennessCentrality bc(dg, cluster);
  const BetweennessResult r = bc.run({0, 5});
  expect_scores_bit_exact(g, r, {0, 5}, "disconnected");
  // Only vertex 1 lies between others; isolated vertices contribute 0.
  EXPECT_GT(r.scores[1], 0.0);
  for (VertexId v = 3; v < 10; ++v) EXPECT_EQ(r.scores[v], 0.0) << v;
}

TEST(Betweenness, ComposedModelCoversBothRuns) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 14});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  BetweennessCentrality bc(dg, cluster);
  const BetweennessResult r = bc.run(pick_sources(8, g.num_vertices));
  EXPECT_GT(r.modeled_ms, 0.0);
  EXPECT_EQ(r.modeled.elapsed_ms, r.modeled_ms);
  // One iteration-end timestamp per executed row of *both* runs, and the
  // reverse run's stamps sit after the forward makespan.
  ASSERT_EQ(r.modeled.iteration_end_ms.size(),
            static_cast<std::size_t>(r.forward_iterations) +
                static_cast<std::size_t>(r.reverse_iterations));
  EXPECT_GT(r.update_bytes_remote, 0u);
  EXPECT_GT(r.reduce_bytes, 0u);
}

TEST(Betweenness, RejectsBadArguments) {
  const graph::EdgeList g = graph::path_graph(8);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  BetweennessCentrality bc(dg, cluster);
  EXPECT_THROW(bc.run({}), std::invalid_argument);
  EXPECT_THROW(bc.run(std::vector<VertexId>(65, 0)), std::invalid_argument);
  EXPECT_THROW(bc.run({1000}), std::out_of_range);
  sim::Cluster wrong(spec_of(4, 1));
  EXPECT_THROW(BetweennessCentrality(dg, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::core
