#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

namespace dsbfs::util {
namespace {

TEST(Splitmix, Deterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Splitmix, AvalancheFlipsManyBits) {
  // Adjacent inputs should differ in roughly half the output bits.
  int total = 0;
  for (std::uint64_t x = 0; x < 256; ++x) {
    total += std::popcount(splitmix64(x) ^ splitmix64(x + 1));
  }
  const double avg = total / 256.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

class PermutationBits : public ::testing::TestWithParam<int> {};

TEST_P(PermutationBits, IsBijectiveExhaustively) {
  const int bits = GetParam();
  VertexPermutation perm(bits, /*seed=*/7);
  const std::uint64_t n = perm.domain_size();
  std::vector<bool> hit(n, false);
  for (std::uint64_t x = 0; x < n; ++x) {
    const std::uint64_t y = perm(x);
    ASSERT_LT(y, n);
    ASSERT_FALSE(hit[y]) << "collision at " << x;
    hit[y] = true;
  }
}

TEST_P(PermutationBits, InverseRoundTrips) {
  const int bits = GetParam();
  VertexPermutation perm(bits, /*seed=*/99);
  for (std::uint64_t x = 0; x < perm.domain_size(); ++x) {
    EXPECT_EQ(perm.inverse(perm(x)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, PermutationBits,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 10, 12, 13));

TEST(Permutation, LargeWidthSampledRoundTrip) {
  VertexPermutation perm(33, /*seed=*/5);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = splitmix64(i) & ((1ULL << 33) - 1);
    const std::uint64_t y = perm(x);
    ASSERT_LT(y, perm.domain_size());
    ASSERT_EQ(perm.inverse(y), x);
  }
}

TEST(Permutation, SeedsProduceDifferentPermutations) {
  VertexPermutation a(16, 1), b(16, 2);
  int differing = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    if (a(x) != b(x)) ++differing;
  }
  EXPECT_GT(differing, 900);
}

TEST(Permutation, ActuallyScrambles) {
  // Identity-like permutations would defeat Graph500 randomization.
  VertexPermutation perm(20, 3);
  int fixed_points = 0;
  for (std::uint64_t x = 0; x < 4096; ++x) {
    if (perm(x) == x) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 8);
}

}  // namespace
}  // namespace dsbfs::util
