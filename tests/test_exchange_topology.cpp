#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baseline/host_apps.hpp"
#include "baseline/serial_bfs.hpp"
#include "comm/exchange.hpp"
#include "core/batch_bfs.hpp"
#include "core/bfs.hpp"
#include "core/components.hpp"
#include "core/delta_sssp.hpp"
#include "core/pagerank.hpp"
#include "core/query_scheduler.hpp"
#include "core/sssp.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

/// Exchange-topology lockdown: the flat, hierarchical and butterfly routing
/// modes must be indistinguishable to every algorithm (bit-exact results,
/// identical logical update multisets) while their wire patterns -- per-hop
/// byte/partner/bin counters -- are pinned against golden values for fixed
/// seeds.  The *Soak* cases sweep seeds; CMake registers them in the soak
/// tier and everything else in tier 1.
namespace dsbfs {
namespace {

using comm::ExchangeCounters;
using comm::UpdateCombine;
using comm::VertexUpdate;
using sim::ExchangeTopology;

constexpr ExchangeTopology kAllTopologies[] = {
    ExchangeTopology::kFlat, ExchangeTopology::kHierarchical,
    ExchangeTopology::kButterfly};

/// `nodes` modeled nodes, one rank each, `gpus` GPUs per rank.
sim::ClusterSpec nodes_spec(int nodes, int gpus = 2, int ranks_per_node = 1) {
  sim::ClusterSpec s;
  s.num_ranks = nodes * ranks_per_node;
  s.gpus_per_rank = gpus;
  s.ranks_per_node = ranks_per_node;
  return s;
}

// ---- comm layer: logical multiset equivalence -----------------------------

/// Collective id exchange where every GPU fills bins via `fill`; worker
/// exceptions are captured and rethrown on the calling thread.
std::vector<std::vector<LocalId>> run_id_exchange(
    const sim::ClusterSpec& spec, const comm::ExchangeOptions& options,
    std::vector<ExchangeCounters>* counters_out,
    const std::function<void(int, std::vector<std::vector<LocalId>>&)>& fill) {
  const int p = spec.total_gpus();
  comm::Transport t(spec);
  comm::NormalExchange ex(t, spec);
  std::vector<std::vector<LocalId>> received(static_cast<std::size_t>(p));
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      try {
        std::vector<std::vector<LocalId>> bins(static_cast<std::size_t>(p));
        fill(g, bins);
        received[static_cast<std::size_t>(g)] =
            ex.exchange(spec.coord_of(g), bins, /*iteration=*/0, options,
                        counters[static_cast<std::size_t>(g)]);
      } catch (...) {
        errors[static_cast<std::size_t>(g)] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return received;
}

/// Same harness for the (id, value) update exchange.
std::vector<std::vector<VertexUpdate>> run_update_exchange(
    const sim::ClusterSpec& spec, const comm::UpdateExchangeOptions& options,
    std::vector<ExchangeCounters>* counters_out,
    const std::function<void(int, std::vector<std::vector<VertexUpdate>>&)>&
        fill) {
  const int p = spec.total_gpus();
  comm::Transport t(spec);
  std::vector<std::vector<VertexUpdate>> received(static_cast<std::size_t>(p));
  std::vector<ExchangeCounters> counters(static_cast<std::size_t>(p));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      try {
        std::vector<std::vector<VertexUpdate>> bins(
            static_cast<std::size_t>(p));
        fill(g, bins);
        received[static_cast<std::size_t>(g)] = comm::exchange_updates(
            t, spec, spec.coord_of(g), bins, /*iteration=*/0, options,
            counters[static_cast<std::size_t>(g)]);
      } catch (...) {
        errors[static_cast<std::size_t>(g)] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  if (counters_out != nullptr) *counters_out = std::move(counters);
  return received;
}

/// Deterministic id payload: GPU g sends (g * 131 + dest * 17 + i) % 97 for
/// i in [0, (g + dest) % 4 + 1) to every destination, salted by `seed`.
std::function<void(int, std::vector<std::vector<LocalId>>&)> id_fill(
    std::uint64_t seed) {
  return [seed](int g, std::vector<std::vector<LocalId>>& bins) {
    for (std::size_t dest = 0; dest < bins.size(); ++dest) {
      const int copies = (g + static_cast<int>(dest)) % 4 + 1;
      for (int i = 0; i < copies; ++i) {
        bins[dest].push_back(static_cast<LocalId>(
            (static_cast<std::uint64_t>(g) * 131 + dest * 17 +
             static_cast<std::uint64_t>(i) + seed * 7919) %
            97));
      }
    }
  };
}

/// Deterministic update payload (same shape, values keyed to sender).
std::function<void(int, std::vector<std::vector<VertexUpdate>>&)> update_fill(
    std::uint64_t seed) {
  return [seed](int g, std::vector<std::vector<VertexUpdate>>& bins) {
    for (std::size_t dest = 0; dest < bins.size(); ++dest) {
      const int copies = (g + static_cast<int>(dest)) % 4 + 1;
      for (int i = 0; i < copies; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(g) * 131 +
                                dest * 17 + static_cast<std::uint64_t>(i) +
                                seed * 7919;
        bins[dest].push_back(VertexUpdate{static_cast<LocalId>(k % 53),
                                          (k % 211) + 1});
      }
    }
  };
}

/// Fold a delivered update stream by the combine op: the logical content an
/// algorithm extracts, invariant to segment merging and delivery order.
std::map<LocalId, std::uint64_t> fold_updates(
    const std::vector<VertexUpdate>& updates, UpdateCombine combine) {
  std::map<LocalId, std::uint64_t> folded;
  for (const VertexUpdate& u : updates) {
    auto [it, fresh] = folded.emplace(u.vertex, u.value);
    if (fresh) continue;
    switch (combine) {
      case UpdateCombine::kMin:
        it->second = std::min(it->second, u.value);
        break;
      case UpdateCombine::kOr:
        it->second |= u.value;
        break;
      case UpdateCombine::kSumDouble:
        it->second = std::bit_cast<std::uint64_t>(
            std::bit_cast<double>(it->second) + std::bit_cast<double>(u.value));
        break;
      case UpdateCombine::kNone:
        break;  // multiset compare handled by the caller
    }
  }
  return folded;
}

struct TopologyCase {
  const char* name;
  int nodes, gpus, ranks_per_node;
};

class CommTopologyEquivalence : public ::testing::TestWithParam<TopologyCase> {
};

TEST_P(CommTopologyEquivalence, IdMultisetsMatchFlat) {
  const TopologyCase tc = GetParam();
  const sim::ClusterSpec spec =
      nodes_spec(tc.nodes, tc.gpus, tc.ranks_per_node);
  for (const bool uniquify : {false, true}) {
    comm::ExchangeOptions options;
    options.local_all2all = false;
    options.uniquify = uniquify;
    options.topology = ExchangeTopology::kFlat;
    auto flat = run_id_exchange(spec, options, nullptr, id_fill(1));
    for (const ExchangeTopology topo :
         {ExchangeTopology::kHierarchical, ExchangeTopology::kButterfly}) {
      options.topology = topo;
      auto got = run_id_exchange(spec, options, nullptr, id_fill(1));
      for (int g = 0; g < spec.total_gpus(); ++g) {
        auto a = flat[static_cast<std::size_t>(g)];
        auto b = got[static_cast<std::size_t>(g)];
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (uniquify) {
          // Multi-hop dedups across sources too; the logical id *set* is
          // what the frontier fold consumes either way.
          a.erase(std::unique(a.begin(), a.end()), a.end());
          b.erase(std::unique(b.begin(), b.end()), b.end());
        }
        EXPECT_EQ(a, b) << sim::to_string(topo) << " gpu " << g
                        << " uniquify " << uniquify;
      }
    }
  }
}

TEST_P(CommTopologyEquivalence, UpdateFoldsMatchFlatAcrossWireOptions) {
  const TopologyCase tc = GetParam();
  const sim::ClusterSpec spec =
      nodes_spec(tc.nodes, tc.gpus, tc.ranks_per_node);
  struct WireCase {
    UpdateCombine combine;
    bool compress, adaptive;
    std::uint64_t value_bias;
  };
  const WireCase wire_cases[] = {
      {UpdateCombine::kNone, false, false, 0},
      {UpdateCombine::kNone, true, false, 0},
      {UpdateCombine::kMin, false, false, 0},
      {UpdateCombine::kMin, true, false, 0},
      {UpdateCombine::kMin, true, true, 0},
      {UpdateCombine::kMin, true, false, 100},
      {UpdateCombine::kOr, false, false, 0},
      {UpdateCombine::kSumDouble, false, false, 0},
  };
  for (const WireCase& wc : wire_cases) {
    comm::UpdateExchangeOptions options;
    options.combine = wc.combine;
    options.compress = wc.compress;
    options.adaptive = wc.adaptive;
    options.value_bias = wc.value_bias;
    options.topology = ExchangeTopology::kFlat;
    auto flat = run_update_exchange(spec, options, nullptr, update_fill(2));
    for (const ExchangeTopology topo :
         {ExchangeTopology::kHierarchical, ExchangeTopology::kButterfly}) {
      options.topology = topo;
      auto got = run_update_exchange(spec, options, nullptr, update_fill(2));
      for (int g = 0; g < spec.total_gpus(); ++g) {
        const auto& a = flat[static_cast<std::size_t>(g)];
        const auto& b = got[static_cast<std::size_t>(g)];
        if (wc.combine == UpdateCombine::kNone ||
            wc.combine == UpdateCombine::kSumDouble) {
          // Order-sensitive folds: multi-hop must reproduce flat's exact
          // per-source delivery order, record for record.
          ASSERT_EQ(a.size(), b.size())
              << sim::to_string(topo) << " gpu " << g;
          for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].vertex, b[i].vertex)
                << sim::to_string(topo) << " gpu " << g << " record " << i;
            EXPECT_EQ(a[i].value, b[i].value)
                << sim::to_string(topo) << " gpu " << g << " record " << i;
          }
        } else {
          EXPECT_EQ(fold_updates(a, wc.combine), fold_updates(b, wc.combine))
              << sim::to_string(topo) << " gpu " << g;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, CommTopologyEquivalence,
    ::testing::Values(TopologyCase{"n1x2", 1, 2, 1},
                      TopologyCase{"n2x2", 2, 2, 1},
                      TopologyCase{"n4x1", 4, 1, 1},
                      TopologyCase{"n4x2", 4, 2, 1},
                      TopologyCase{"n8x2", 8, 2, 1},
                      TopologyCase{"n2r2x2", 2, 2, 2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(CommTopology, ButterflyRequiresPowerOfTwoNodes) {
  const sim::ClusterSpec spec = nodes_spec(3);
  comm::ExchangeOptions options;
  options.topology = ExchangeTopology::kButterfly;
  EXPECT_THROW(run_id_exchange(spec, options, nullptr, id_fill(1)),
               std::invalid_argument);
  // Hierarchical has no such constraint: odd node counts route fine.
  options.topology = ExchangeTopology::kHierarchical;
  EXPECT_NO_THROW(run_id_exchange(spec, options, nullptr, id_fill(1)));
}

TEST(CommTopology, SingleNodeDegeneratesToIntraNodeOnly) {
  // One node: no inter hops; every topology reduces to the NVLink domain
  // and the flat result, and the hop trace carries no inter-node entries.
  const sim::ClusterSpec spec = nodes_spec(1, 4);
  comm::UpdateExchangeOptions options;
  options.combine = UpdateCombine::kNone;
  auto flat = run_update_exchange(spec, options, nullptr, update_fill(3));
  for (const ExchangeTopology topo :
       {ExchangeTopology::kHierarchical, ExchangeTopology::kButterfly}) {
    options.topology = topo;
    std::vector<ExchangeCounters> counters;
    auto got = run_update_exchange(spec, options, &counters, update_fill(3));
    for (int g = 0; g < spec.total_gpus(); ++g) {
      const auto gi = static_cast<std::size_t>(g);
      ASSERT_EQ(flat[gi].size(), got[gi].size()) << "gpu " << g;
      for (std::size_t i = 0; i < flat[gi].size(); ++i) {
        EXPECT_EQ(flat[gi][i].vertex, got[gi][i].vertex);
        EXPECT_EQ(flat[gi][i].value, got[gi][i].value);
      }
      ASSERT_EQ(counters[gi].hops.size(), 1u) << "gpu " << g;
      EXPECT_FALSE(counters[gi].hops[0].internode);
      EXPECT_EQ(counters[gi].send_bytes_remote, 0u);
      EXPECT_EQ(counters[gi].send_dest_ranks, 0);
    }
  }
}

TEST(CommTopology, FlatRunsCarryNoHopTrace) {
  const sim::ClusterSpec spec = nodes_spec(2);
  std::vector<ExchangeCounters> counters;
  comm::ExchangeOptions options;  // default flat
  run_id_exchange(spec, options, &counters, id_fill(4));
  for (const auto& c : counters) EXPECT_TRUE(c.hops.empty());
}

// ---- golden wire counters -------------------------------------------------
// Exact per-hop byte/partner/bin pins for a fixed payload: any change to the
// wire format, the hop schedule, the merge policy or the byte accounting
// moves at least one of these.  (Verified during development: a one-byte
// payload perturbation flips the digests.)

TEST(GoldenWire, HierarchicalFourNodes) {
  const sim::ClusterSpec spec = nodes_spec(4, 2);
  comm::UpdateExchangeOptions options;
  options.combine = UpdateCombine::kMin;
  options.topology = ExchangeTopology::kHierarchical;
  std::vector<ExchangeCounters> counters;
  run_update_exchange(spec, options, &counters, update_fill(5));

  // Shape: hop 0 intra distribute/gather, hop 1 one inter hop (3 partners
  // per leader), hop 2 intra scatter -- identical on every GPU.
  for (int g = 0; g < spec.total_gpus(); ++g) {
    const auto& c = counters[static_cast<std::size_t>(g)];
    ASSERT_EQ(c.hops.size(), 3u) << "gpu " << g;
    EXPECT_FALSE(c.hops[0].internode);
    EXPECT_TRUE(c.hops[1].internode);
    EXPECT_FALSE(c.hops[2].internode);
    EXPECT_EQ(c.hops[0].partners, 1) << "gpu " << g;  // one same-node peer
    EXPECT_EQ(c.hops[1].partners, g == spec.node_leader(spec.node_of(g)) ? 3
                                                                         : 0)
        << "gpu " << g;
  }
  // Full-trace digests, one per GPU (every field of every hop).
  const std::uint64_t expected[] = {
      0xabee06294294b7b6ull, 0xda06d394cfd80af5ull, 0x13aa4b7f3dc810e5ull,
      0x6d7725e5ff23c698ull, 0xabee06294294b7b6ull, 0xda06d394cfd80af5ull,
      0xabee06294294b7b6ull, 0xda06d394cfd80af5ull,
  };
  for (int g = 0; g < spec.total_gpus(); ++g) {
    EXPECT_EQ(sim::hop_digest(counters[static_cast<std::size_t>(g)].hops),
              expected[g])
        << "gpu " << g << " digest 0x" << std::hex
        << sim::hop_digest(counters[static_cast<std::size_t>(g)].hops);
  }
}

TEST(GoldenWire, ButterflyFourNodes) {
  const sim::ClusterSpec spec = nodes_spec(4, 2);
  comm::ExchangeOptions options;
  options.uniquify = true;
  options.topology = ExchangeTopology::kButterfly;
  std::vector<ExchangeCounters> counters;
  run_id_exchange(spec, options, &counters, id_fill(6));

  // Shape: hop 0 intra, hops 1..2 the two XOR hops (single partner each),
  // hop 3 scatter.
  for (int g = 0; g < spec.total_gpus(); ++g) {
    const auto& c = counters[static_cast<std::size_t>(g)];
    ASSERT_EQ(c.hops.size(), 4u) << "gpu " << g;
    const bool leader = g == spec.node_leader(spec.node_of(g));
    EXPECT_FALSE(c.hops[0].internode);
    EXPECT_TRUE(c.hops[1].internode);
    EXPECT_TRUE(c.hops[2].internode);
    EXPECT_FALSE(c.hops[3].internode);
    EXPECT_EQ(c.hops[1].partners, leader ? 1 : 0) << "gpu " << g;
    EXPECT_EQ(c.hops[2].partners, leader ? 1 : 0) << "gpu " << g;
  }
  const std::uint64_t expected[] = {
      0x2e33dabcf1791fc0ull, 0xc440576aad5e5920ull, 0x2e33dabcf1791fc0ull,
      0xc440576aad5e5920ull, 0x2e33dabcf1791fc0ull, 0xc440576aad5e5920ull,
      0x2e33dabcf1791fc0ull, 0xc440576aad5e5920ull,
  };
  for (int g = 0; g < spec.total_gpus(); ++g) {
    EXPECT_EQ(sim::hop_digest(counters[static_cast<std::size_t>(g)].hops),
              expected[g])
        << "gpu " << g << " digest 0x" << std::hex
        << sim::hop_digest(counters[static_cast<std::size_t>(g)].hops);
  }
}

TEST(GoldenWire, LegacyCountersMapToHopClasses) {
  // The legacy byte counters must partition the hop trace: remote bytes =
  // inter-node hop bytes, local bytes = intra-node hop bytes (plus the
  // lossless-wire frame overhead charged per message on remote sends).
  const sim::ClusterSpec spec = nodes_spec(4, 2);
  comm::UpdateExchangeOptions options;
  options.combine = UpdateCombine::kMin;
  for (const ExchangeTopology topo :
       {ExchangeTopology::kHierarchical, ExchangeTopology::kButterfly}) {
    options.topology = topo;
    std::vector<ExchangeCounters> counters;
    run_update_exchange(spec, options, &counters, update_fill(5));
    for (int g = 0; g < spec.total_gpus(); ++g) {
      const auto& c = counters[static_cast<std::size_t>(g)];
      std::uint64_t inter_send = 0, intra_send = 0;
      for (const sim::HopCounters& h : c.hops) {
        (h.internode ? inter_send : intra_send) += h.send_bytes;
      }
      EXPECT_EQ(c.send_bytes_remote, inter_send)
          << sim::to_string(topo) << " gpu " << g;
      EXPECT_EQ(c.local_bytes, intra_send)
          << sim::to_string(topo) << " gpu " << g;
    }
  }
}

// ---- facade equivalence: every algorithm, bit for bit ---------------------

enum class GraphFamily { kRmat, kGrid };

struct FacadeCase {
  const char* name;
  GraphFamily family;
  int nodes;
};

graph::EdgeList make_graph(GraphFamily family, std::uint64_t seed) {
  switch (family) {
    case GraphFamily::kRmat:
      return graph::rmat_graph500({.scale = 10, .seed = seed});
    case GraphFamily::kGrid:
      return graph::grid_graph(32, 32);
  }
  return {};
}

class FacadeTopologyEquivalence
    : public ::testing::TestWithParam<FacadeCase> {
 protected:
  void SetUp() override {
    const FacadeCase fc = GetParam();
    graph_ = make_graph(fc.family, 61);
    spec_ = nodes_spec(fc.nodes, 2);
    dg_ = graph::build_distributed(graph_, spec_, 16);
    host_ = graph::build_host_csr(graph_);
  }
  graph::EdgeList graph_;
  sim::ClusterSpec spec_;
  graph::DistributedGraph dg_;
  graph::HostCsr host_;
};

TEST_P(FacadeTopologyEquivalence, BfsBitExact) {
  sim::Cluster cluster(spec_);
  core::BfsOptions options;
  options.local_all2all = true;
  options.uniquify = true;
  options.compute_parents = true;
  const VertexId source =
      core::DistributedBfs(dg_, cluster, options).sample_source(1);
  const auto expected = baseline::serial_bfs(host_, source);
  std::vector<VertexId> first_parents;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    core::DistributedBfs bfs(dg_, cluster, options);
    const core::BfsResult r = bfs.run(source);
    EXPECT_EQ(r.distances, expected) << sim::to_string(topo);
    const auto report =
        core::validate_parents(graph_, source, r.distances, r.parents);
    EXPECT_TRUE(report.ok) << sim::to_string(topo) << ": " << report.error;
    // Parent claims resolve by deterministic min tie-break (smallest
    // eligible parent id wins regardless of sender arrival order), so the
    // trees themselves are bit-identical across routing modes.
    if (first_parents.empty()) {
      first_parents = r.parents;
    } else {
      ASSERT_EQ(r.parents, first_parents) << sim::to_string(topo);
    }
  }
}

TEST_P(FacadeTopologyEquivalence, BatchBfsBitExactAtBothLaneWidths) {
  sim::Cluster cluster(spec_);
  for (const std::size_t width : {std::size_t{1}, std::size_t{64}}) {
    core::BatchBfsOptions options;
    options.uniquify = true;
    core::DistributedBatchBfs probe(dg_, cluster, options);
    std::vector<VertexId> sources;
    for (std::size_t k = 0; k < width; ++k) {
      sources.push_back(probe.sample_source(k));
    }
    std::vector<core::BatchBfsResult> results;
    for (const ExchangeTopology topo : kAllTopologies) {
      options.exchange_topology = topo;
      core::DistributedBatchBfs batch(dg_, cluster, options);
      results.push_back(batch.run(sources));
    }
    for (std::size_t lane = 0; lane < width; ++lane) {
      const auto expected = baseline::serial_bfs(host_, sources[lane]);
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].distances[lane], expected)
            << "lane " << lane << " W " << width << " topology " << i;
      }
    }
  }
}

TEST_P(FacadeTopologyEquivalence, SsspBitExact) {
  sim::Cluster cluster(spec_);
  const auto expected = baseline::serial_sssp(host_, 3);
  core::SsspOptions options;
  options.uniquify = true;
  options.compress = true;
  std::vector<std::vector<std::uint64_t>> all;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    core::DistributedSssp sssp(dg_, cluster, options);
    all.push_back(sssp.run(3).distances);
    EXPECT_EQ(all.back(), expected) << sim::to_string(topo);
  }
}

TEST_P(FacadeTopologyEquivalence, DeltaSsspBitExact) {
  sim::Cluster cluster(spec_);
  const auto expected = baseline::serial_sssp(host_, 3);
  core::DeltaSsspOptions options;
  options.compress = true;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    core::DistributedDeltaSssp sssp(dg_, cluster, options);
    EXPECT_EQ(sssp.run(3).distances, expected) << sim::to_string(topo);
  }
}

TEST_P(FacadeTopologyEquivalence, CcBitExact) {
  sim::Cluster cluster(spec_);
  const auto expected = baseline::serial_components(host_);
  core::CcOptions options;
  options.uniquify = true;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    EXPECT_EQ(core::ConnectedComponents(dg_, cluster, options).run().labels,
              expected)
        << sim::to_string(topo);
  }
}

TEST_P(FacadeTopologyEquivalence, PagerankBitExact) {
  // kSumDouble is order-sensitive, so the multi-hop exchange forwards
  // per-source segments unmerged: the floating-point fold order -- and
  // therefore every rank, bit for bit -- must match flat exactly.
  sim::Cluster cluster(spec_);
  core::PagerankOptions options;
  options.max_iterations = 10;
  std::vector<std::vector<double>> all;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    core::DistributedPagerank pr(dg_, cluster, options);
    all.push_back(pr.run().ranks);
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_EQ(all[i].size(), all[0].size());
    for (std::size_t v = 0; v < all[0].size(); ++v) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(all[i][v]),
                std::bit_cast<std::uint64_t>(all[0][v]))
          << "vertex " << v << " topology " << i;
    }
  }
}

TEST_P(FacadeTopologyEquivalence, SchedulerBitExact) {
  sim::Cluster cluster(spec_);
  core::SchedulerOptions options;
  options.width = 4;
  core::ArrivalTraceConfig trace_cfg;
  trace_cfg.queries = 8;
  trace_cfg.rate = 2.0;
  trace_cfg.seed = 17;
  const auto trace = core::make_arrival_trace(dg_, trace_cfg);
  std::vector<core::SchedulerOutcome> all;
  for (const ExchangeTopology topo : kAllTopologies) {
    options.exchange_topology = topo;
    core::QueryScheduler sched(dg_, cluster, options);
    all.push_back(sched.run(trace));
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_EQ(all[i].queries.size(), all[0].queries.size());
    for (std::size_t q = 0; q < all[0].queries.size(); ++q) {
      const auto& a = all[0].queries[q];
      const auto& b = all[i].queries[q];
      EXPECT_EQ(b.source, a.source) << "query " << q;
      EXPECT_EQ(b.admit_iteration, a.admit_iteration) << "query " << q;
      EXPECT_EQ(b.retire_iteration, a.retire_iteration) << "query " << q;
      EXPECT_EQ(b.lane, a.lane) << "query " << q;
      EXPECT_EQ(b.distances, a.distances) << "query " << q;
    }
    ASSERT_EQ(all[i].events.size(), all[0].events.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, FacadeTopologyEquivalence,
    ::testing::Values(FacadeCase{"rmat_n2", GraphFamily::kRmat, 2},
                      FacadeCase{"rmat_n4", GraphFamily::kRmat, 4},
                      FacadeCase{"rmat_n8", GraphFamily::kRmat, 8},
                      FacadeCase{"grid_n2", GraphFamily::kGrid, 2},
                      FacadeCase{"grid_n4", GraphFamily::kGrid, 4},
                      FacadeCase{"grid_n8", GraphFamily::kGrid, 8}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- soak tier: seed sweeps -----------------------------------------------
// Registered by CMake as test_exchange_topology_soak (--gtest_filter=*Soak*).

TEST(TopologySoak, CommLayerSeedSweep) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const TopologyCase tc :
         {TopologyCase{"", 2, 2, 1}, TopologyCase{"", 4, 2, 1},
          TopologyCase{"", 8, 2, 1}, TopologyCase{"", 4, 2, 2}}) {
      const sim::ClusterSpec spec =
          nodes_spec(tc.nodes, tc.gpus, tc.ranks_per_node);
      comm::UpdateExchangeOptions options;
      options.combine = UpdateCombine::kMin;
      options.compress = seed % 2 == 0;
      auto flat = run_update_exchange(spec, options, nullptr,
                                      update_fill(seed));
      for (const ExchangeTopology topo :
           {ExchangeTopology::kHierarchical, ExchangeTopology::kButterfly}) {
        options.topology = topo;
        auto got =
            run_update_exchange(spec, options, nullptr, update_fill(seed));
        for (int g = 0; g < spec.total_gpus(); ++g) {
          ASSERT_EQ(fold_updates(flat[static_cast<std::size_t>(g)],
                                 options.combine),
                    fold_updates(got[static_cast<std::size_t>(g)],
                                 options.combine))
              << sim::to_string(topo) << " seed " << seed << " nodes "
              << tc.nodes << " gpu " << g;
        }
      }
    }
  }
}

TEST(TopologySoak, AlgorithmsSeedSweep) {
  for (std::uint64_t seed = 71; seed <= 74; ++seed) {
    const auto g = graph::rmat_graph500({.scale = 10, .seed = seed});
    const auto host = graph::build_host_csr(g);
    for (const int nodes : {2, 4, 8}) {
      const sim::ClusterSpec spec = nodes_spec(nodes, 2);
      const auto dg = graph::build_distributed(g, spec, 16);
      sim::Cluster cluster(spec);

      core::BfsOptions bfs_options;
      bfs_options.uniquify = true;
      const VertexId source =
          core::DistributedBfs(dg, cluster, bfs_options).sample_source(seed);
      const auto bfs_expected = baseline::serial_bfs(host, source);
      const auto sssp_expected = baseline::serial_sssp(host, source);
      const auto cc_expected = baseline::serial_components(host);

      for (const ExchangeTopology topo : kAllTopologies) {
        bfs_options.exchange_topology = topo;
        core::DistributedBfs bfs(dg, cluster, bfs_options);
        ASSERT_EQ(bfs.run(source).distances, bfs_expected)
            << sim::to_string(topo) << " seed " << seed << " nodes " << nodes;

        core::SsspOptions sssp_options;
        sssp_options.uniquify = true;
        sssp_options.compress = true;
        sssp_options.exchange_topology = topo;
        core::DistributedSssp sssp(dg, cluster, sssp_options);
        ASSERT_EQ(sssp.run(source).distances, sssp_expected)
            << sim::to_string(topo) << " seed " << seed << " nodes " << nodes;

        core::CcOptions cc_options;
        cc_options.exchange_topology = topo;
        ASSERT_EQ(core::ConnectedComponents(dg, cluster, cc_options)
                      .run()
                      .labels,
                  cc_expected)
            << sim::to_string(topo) << " seed " << seed << " nodes " << nodes;
      }
    }
  }
}

}  // namespace
}  // namespace dsbfs
