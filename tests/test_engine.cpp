#include "engine/iterative_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "baseline/host_apps.hpp"
#include "baseline/serial_bfs.hpp"
#include "core/bfs.hpp"
#include "core/components.hpp"
#include "core/packing.hpp"
#include "core/pagerank.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::engine {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

// ---- TagBlocks -----------------------------------------------------------

TEST(TagBlocks, MatchesTheHistoricTagArithmetic) {
  EXPECT_EQ(TagBlocks::control(0), comm::kTagControl);
  EXPECT_EQ(TagBlocks::control(3), comm::kTagControl + 3 * comm::kTagBlock);
  EXPECT_EQ(TagBlocks::user(5), comm::kTagUser + 5 * comm::kTagBlock);
  EXPECT_EQ(TagBlocks::user(5, 4), comm::kTagUser + 5 * comm::kTagBlock + 4);
  // The BFS parent exchange historically ran on block depth + 2.
  EXPECT_EQ(TagBlocks::user(TagBlocks::after_loop(7)),
            comm::kTagUser + (7 + 2) * comm::kTagBlock);
  // Channel spacing lives with the reducers now (comm::kReduceChannelStride);
  // PageRank's three per-iteration reductions must fit.
  static_assert(comm::kMaxReduceChannels >= 3);
  static_assert(comm::kReduceChannelStride > 0);
}

TEST(TagBlocks, PostLoopBlocksStayDisjointFromIterations) {
  const int iterations = 11;
  for (int phase = 0; phase < 3; ++phase) {
    const int block = TagBlocks::after_loop(iterations, phase);
    // Strictly past every iteration's block, and per-phase distinct.
    EXPECT_GT(TagBlocks::user(block), TagBlocks::control(iterations));
    EXPECT_GT(TagBlocks::user(block), TagBlocks::user(iterations));
    if (phase > 0) {
      EXPECT_GT(block, TagBlocks::after_loop(iterations, phase - 1));
    }
  }
}

// ---- parent-probe packing (core/packing.hpp) -----------------------------

TEST(ParentPacking, RoundTripsAtMaximumLocalIdWidth) {
  // The exchange delivers any 32-bit local id; the deepest representable
  // level must not bleed into it (and vice versa).
  const std::uint64_t max_local = kInvalidLocal;  // 0xffffffff
  const Depth max_level = static_cast<Depth>(core::kParentDepthMask);
  const std::uint64_t word = core::pack_parent_probe(max_local, max_level);
  EXPECT_EQ(core::parent_probe_local(word), max_local);
  EXPECT_EQ(core::parent_probe_level(word), max_level);

  const std::uint64_t word2 = core::pack_parent_probe(max_local, 0);
  EXPECT_EQ(core::parent_probe_local(word2), max_local);
  EXPECT_EQ(core::parent_probe_level(word2), 0);

  const std::uint64_t word3 = core::pack_parent_probe(0, max_level);
  EXPECT_EQ(core::parent_probe_local(word3), 0u);
  EXPECT_EQ(core::parent_probe_level(word3), max_level);
}

// ---- CommContext ---------------------------------------------------------

TEST(CommContext, OwnsTheClusterWideCollectives) {
  const auto spec = spec_of(2, 2);
  CommContext comm(spec);
  ASSERT_EQ(comm.everyone().size(), 4u);
  for (int g = 0; g < 4; ++g) EXPECT_EQ(comm.everyone()[g], g);

  // control_allreduce sums every GPU's word.
  std::vector<std::uint64_t> results(4);
  std::vector<std::thread> threads;
  for (int g = 0; g < 4; ++g) {
    threads.emplace_back([&, g] {
      results[static_cast<std::size_t>(g)] = comm.control_allreduce(
          g, static_cast<std::uint64_t>(10 + g), /*iteration=*/0);
    });
  }
  for (auto& th : threads) th.join();
  for (const std::uint64_t r : results) EXPECT_EQ(r, 10u + 11 + 12 + 13);
}

// ---- IterativeEngine with a toy algorithm --------------------------------

/// Countdown: GPU g starts with g + 1 units of work and burns one per
/// iteration; the cluster converges when the control allreduce sees zero
/// remaining anywhere.  Records the phase sequence to pin the engine's
/// calling order.
class CountdownAlgorithm {
 public:
  static constexpr const char* kStateLabel = "countdown.state";

  struct State {
    int remaining = 0;
    std::vector<std::string> trace;
    int finalize_iterations = -1;
    sim::GpuIterationCounters iter;
  };

  std::unique_ptr<State> init(GpuContext& ctx) {
    auto s = std::make_unique<State>();
    s->remaining = ctx.gpu + 1;
    return s;
  }
  std::uint64_t state_bytes(const GpuContext&, const State&) const {
    return 64;
  }
  using Snapshot = State;
  Snapshot snapshot(GpuContext&, const State& s) const { return s; }
  void restore(GpuContext&, State& s, const Snapshot& snap) { s = snap; }
  void previsit(GpuContext&, State& s, int) {
    s.iter = sim::GpuIterationCounters{};
    s.trace.push_back("previsit");
  }
  void visit(GpuContext&, State& s, int iteration) {
    s.iter.nn.edges = static_cast<std::uint64_t>(iteration);
    s.trace.push_back("visit");
  }
  void reduce(GpuContext&, State& s, int) { s.trace.push_back("reduce"); }
  void exchange(GpuContext&, State& s, int) { s.trace.push_back("exchange"); }
  std::uint64_t contribution(GpuContext&, State& s, int) {
    s.trace.push_back("contribution");
    return static_cast<std::uint64_t>(s.remaining);
  }
  void post_reduce(GpuContext&, State& s, int, std::uint64_t) {
    s.trace.push_back("post_reduce");
  }
  bool end_iteration(GpuContext&, State& s, int, std::uint64_t control) {
    s.trace.push_back("end");
    if (s.remaining > 0) --s.remaining;
    return control == 0;
  }
  bool collect_counters() const { return true; }
  sim::GpuIterationCounters iteration_counters(const State& s) const {
    return s.iter;
  }
  void finalize(GpuContext&, State& s, int iterations) {
    s.finalize_iterations = iterations;
  }
};

TEST(IterativeEngine, RunsPhasesInOrderUntilControlConverges) {
  const auto spec = spec_of(2, 2);  // p = 4; slowest GPU holds 4 units
  sim::Cluster cluster(spec);
  const graph::EdgeList g = graph::path_graph(16);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);

  CountdownAlgorithm algo;
  // Sequential schedule: hook order is only deterministic without the
  // two-stream overlap (overlapped reduce/exchange run on stream threads).
  IterativeEngine<CountdownAlgorithm> engine(dg, cluster, {.overlap = false});
  const auto run = engine.run(algo);

  // GPU 3 needs 4 iterations to drain, plus the all-zero round that
  // announces convergence.
  EXPECT_EQ(run.iterations, 5);
  EXPECT_GT(run.measured_ms, 0.0);
  const std::vector<std::string> phases = {
      "previsit", "visit", "reduce", "exchange", "contribution",
      "post_reduce", "end"};
  for (int g_idx = 0; g_idx < 4; ++g_idx) {
    const auto& s = run.state(g_idx);
    EXPECT_EQ(s.remaining, 0);
    EXPECT_EQ(s.finalize_iterations, 5);
    ASSERT_EQ(s.trace.size(), phases.size() * 5);
    for (std::size_t i = 0; i < s.trace.size(); ++i) {
      EXPECT_EQ(s.trace[i], phases[i % phases.size()]) << i;
    }
    // Engine-owned history: one snapshot per iteration, taken after the
    // iteration ended.
    const auto& history = run.histories[static_cast<std::size_t>(g_idx)];
    ASSERT_EQ(history.size(), 5u);
    for (std::size_t it = 0; it < history.size(); ++it) {
      EXPECT_EQ(history[it].nn.edges, it);
    }
  }
}

TEST(IterativeEngine, RejectsMismatchedSpecs) {
  const graph::EdgeList g = graph::path_graph(16);
  const graph::DistributedGraph dg =
      graph::build_distributed(g, spec_of(2, 1), 4);
  sim::Cluster wrong(spec_of(2, 2));
  EXPECT_THROW((IterativeEngine<CountdownAlgorithm>(dg, wrong)),
               std::invalid_argument);
}

TEST(IterativeEngine, SpecCheckIsSharedByEveryAlgorithmConstructor) {
  const graph::EdgeList g = graph::path_graph(16);
  const graph::DistributedGraph dg =
      graph::build_distributed(g, spec_of(2, 1), 4);
  sim::Cluster wrong(spec_of(4, 1));
  EXPECT_THROW(core::DistributedBfs(dg, wrong), std::invalid_argument);
  EXPECT_THROW(core::ConnectedComponents(dg, wrong), std::invalid_argument);
  EXPECT_THROW(core::DistributedPagerank(dg, wrong), std::invalid_argument);
}

// ---- regression: ported algorithms still match the serial references -----

TEST(EnginePortRegression, BfsDistancesMatchSerialReference) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 31});
  const graph::HostCsr host = graph::build_host_csr(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  core::DistributedBfs bfs(dg, cluster);
  for (const VertexId source : {VertexId{2}, VertexId{77}}) {
    const core::BfsResult r = bfs.run(source);
    const auto expected = baseline::serial_bfs(host, source);
    ASSERT_EQ(r.distances.size(), expected.size());
    for (VertexId v = 0; v < expected.size(); ++v) {
      ASSERT_EQ(r.distances[v], expected[v]) << "vertex " << v;
    }
  }
}

TEST(EnginePortRegression, ComponentLabelsMatchSerialReference) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 32});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const core::CcResult r = core::ConnectedComponents(dg, cluster).run();
  const auto expected =
      baseline::serial_components(graph::build_host_csr(g));
  ASSERT_EQ(r.labels.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(r.labels[v], expected[v]) << "vertex " << v;
  }
}

TEST(EnginePortRegression, PagerankMatchesSerialReference) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 33});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const core::PagerankResult r = core::DistributedPagerank(dg, cluster).run();
  const auto expected = baseline::serial_pagerank(graph::build_host_csr(g));
  ASSERT_EQ(r.ranks.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(r.ranks[v], expected[v], 1e-9) << "vertex " << v;
  }
}

// ---- two-stream overlap --------------------------------------------------

TEST(EngineOverlap, ValueAlgorithmResultsIdenticalAndModeledTimeLower) {
  // The delegate label reduction runs concurrently with the normal-label
  // exchange under overlap; results must be identical either way, and the
  // replayed cluster time must strictly favour the overlapped schedule.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 35});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);

  core::CcOptions on;
  on.overlap = true;
  core::CcOptions off;
  off.overlap = false;
  const core::CcResult r_on = core::ConnectedComponents(dg, cluster, on).run();
  const core::CcResult r_off =
      core::ConnectedComponents(dg, cluster, off).run();

  EXPECT_EQ(r_on.labels, r_off.labels);
  EXPECT_EQ(r_on.update_bytes_remote, r_off.update_bytes_remote);
  EXPECT_LT(r_on.modeled_ms, r_off.modeled_ms);
}

TEST(EngineOverlap, BfsSequentialScheduleMatchesOverlapped) {
  // BFS on the engine's sequential branch: same distances, and the replayed
  // cluster time must not beat the overlapped schedule.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 36});
  const graph::HostCsr host = graph::build_host_csr(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);

  core::BfsOptions off;
  off.overlap = false;
  const core::BfsResult r_on = core::DistributedBfs(dg, cluster).run(7);
  const core::BfsResult r_off =
      core::DistributedBfs(dg, cluster, off).run(7);

  EXPECT_EQ(r_on.distances, r_off.distances);
  const auto expected = baseline::serial_bfs(host, 7);
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(r_off.distances[v], expected[v]) << "vertex " << v;
  }
  EXPECT_LT(r_on.metrics.modeled_ms, r_off.metrics.modeled_ms);
}

TEST(EnginePortRegression, BfsParentsStillFormValidTree) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 34});
  const graph::HostCsr host = graph::build_host_csr(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 8);
  core::BfsOptions options;
  options.compute_parents = true;
  core::DistributedBfs bfs(dg, cluster, options);
  const VertexId source = 5;
  const core::BfsResult r = bfs.run(source);
  ASSERT_EQ(r.parents.size(), r.distances.size());
  EXPECT_EQ(r.parents[source], source);
  for (VertexId v = 0; v < r.parents.size(); ++v) {
    if (v == source || r.distances[v] == kUnvisited) continue;
    const VertexId parent = r.parents[v];
    ASSERT_NE(parent, kInvalidVertex) << v;
    // Parent sits exactly one level closer to the source.
    EXPECT_EQ(r.distances[parent] + 1, r.distances[v]) << v;
  }
}

}  // namespace
}  // namespace dsbfs::engine
