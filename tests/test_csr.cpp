#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace dsbfs::graph {
namespace {

TEST(Csr, FromEdgesBasic) {
  // rows: 0->{1,2}, 1->{}, 2->{0}
  const std::vector<std::uint64_t> rows{0, 0, 2};
  const std::vector<std::uint32_t> cols{1, 2, 0};
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(3, cols, rows);
  EXPECT_EQ(csr.num_rows(), 3u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.row_length(0), 2u);
  EXPECT_EQ(csr.row_length(1), 0u);
  EXPECT_EQ(csr.row_length(2), 1u);
  EXPECT_EQ(csr.row(0)[0], 1u);
  EXPECT_EQ(csr.row(0)[1], 2u);
  EXPECT_EQ(csr.row(2)[0], 0u);
}

TEST(Csr, PreservesInputOrderWithinRow) {
  const std::vector<std::uint64_t> rows{1, 0, 1, 1};
  const std::vector<std::uint32_t> cols{9, 5, 7, 8};
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(2, cols, rows);
  const auto r1 = csr.row(1);
  EXPECT_EQ(r1[0], 9u);
  EXPECT_EQ(r1[1], 7u);
  EXPECT_EQ(r1[2], 8u);
}

TEST(Csr, EmptyGraph) {
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(0, {}, {});
  EXPECT_EQ(csr.num_rows(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(Csr, RowsWithNoEdgesAtEnds) {
  const std::vector<std::uint64_t> rows{2};
  const std::vector<std::uint32_t> cols{1};
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(5, cols, rows);
  EXPECT_EQ(csr.row_length(0), 0u);
  EXPECT_EQ(csr.row_length(2), 1u);
  EXPECT_EQ(csr.row_length(4), 0u);
}

TEST(Csr, MismatchedArraysThrow) {
  const std::vector<std::uint64_t> rows{0, 1};
  const std::vector<std::uint32_t> cols{1};
  EXPECT_THROW(
      (Csr<std::uint32_t, std::uint32_t>::from_edges(2, cols, rows)),
      std::invalid_argument);
}

TEST(Csr, StorageBytesAccounting) {
  // 32-bit cols/offsets: (rows+1)*4 + edges*4.
  const std::vector<std::uint64_t> rows{0, 1, 2};
  const std::vector<std::uint32_t> cols{1, 2, 0};
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(3, cols, rows);
  EXPECT_EQ(csr.storage_bytes(), 4u * 4 + 3u * 4);

  // 64-bit columns (the nn subgraph): edges cost 8 bytes.
  const std::vector<VertexId> cols64{1, 2, 0};
  const auto csr64 = Csr<VertexId, std::uint32_t>::from_edges(3, cols64, rows);
  EXPECT_EQ(csr64.storage_bytes(), 4u * 4 + 3u * 8);
}

TEST(Csr, HostCsrFromEdgeList) {
  EdgeList g;
  g.num_vertices = 4;
  g.add(2, 3);
  g.add(0, 1);
  g.add(0, 3);
  const HostCsr csr = build_host_csr(g);
  EXPECT_EQ(csr.num_rows(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.row_length(0), 2u);
  const auto row0 = csr.row(0);
  EXPECT_EQ(row0[0], 1u);
  EXPECT_EQ(row0[1], 3u);
  EXPECT_EQ(csr.row(2)[0], 3u);
}

TEST(Csr, LargeRandomAgainstNaive) {
  util::SequentialRng rng(77);
  const std::size_t n = 500, m = 5000;
  std::vector<std::uint64_t> rows(m);
  std::vector<std::uint32_t> cols(m);
  std::vector<std::vector<std::uint32_t>> naive(n);
  for (std::size_t i = 0; i < m; ++i) {
    rows[i] = rng.below(n);
    cols[i] = static_cast<std::uint32_t>(rng.below(n));
    naive[rows[i]].push_back(cols[i]);
  }
  const auto csr = Csr<std::uint32_t, std::uint32_t>::from_edges(n, cols, rows);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = csr.row(r);
    ASSERT_EQ(row.size(), naive[r].size());
    for (std::size_t j = 0; j < row.size(); ++j) EXPECT_EQ(row[j], naive[r][j]);
  }
}

}  // namespace
}  // namespace dsbfs::graph
