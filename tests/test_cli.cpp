#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dsbfs::util {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli({"--scale=22"});
  EXPECT_EQ(cli.get_int("scale", 10, "graph scale"), 22);
}

TEST(Cli, SpaceSyntax) {
  Cli cli = make_cli({"--scale", "18"});
  EXPECT_EQ(cli.get_int("scale", 10, ""), 18);
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("scale", 20, ""), 20);
  EXPECT_EQ(cli.get_string("gpus", "1x1x4", ""), "1x1x4");
  EXPECT_DOUBLE_EQ(cli.get_double("factor", 0.5, ""), 0.5);
  EXPECT_FALSE(cli.get_flag("do", false, ""));
}

TEST(Cli, BareFlagIsTrue) {
  Cli cli = make_cli({"--uniquify"});
  EXPECT_TRUE(cli.get_flag("uniquify", false, ""));
}

TEST(Cli, FlagFalseSpellings) {
  EXPECT_FALSE(make_cli({"--do=0"}).get_flag("do", true, ""));
  EXPECT_FALSE(make_cli({"--do=false"}).get_flag("do", true, ""));
  EXPECT_FALSE(make_cli({"--do=no"}).get_flag("do", true, ""));
  EXPECT_TRUE(make_cli({"--do=1"}).get_flag("do", false, ""));
}

TEST(Cli, DoubleParsing) {
  Cli cli = make_cli({"--alpha=1e-7"});
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0, ""), 1e-7);
}

TEST(Cli, StringValue) {
  Cli cli = make_cli({"--gpus=4x2x2"});
  EXPECT_EQ(cli.get_string("gpus", "", ""), "4x2x2");
}

TEST(Cli, HelpRequested) {
  EXPECT_TRUE(make_cli({"--help"}).help_requested());
  EXPECT_TRUE(make_cli({"-h"}).help_requested());
  EXPECT_FALSE(make_cli({"--scale=2"}).help_requested());
}

TEST(Cli, UnknownOptionsReported) {
  Cli cli = make_cli({"--scale=2", "--tpyo=1"});
  cli.get_int("scale", 1, "");
  const auto unknown = cli.unknown_options();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(Cli, PositionalArgumentRejected) {
  EXPECT_THROW(make_cli({"oops"}), std::invalid_argument);
}

TEST(Cli, FlagFollowedByFlag) {
  Cli cli = make_cli({"--uniquify", "--do"});
  EXPECT_TRUE(cli.get_flag("uniquify", false, ""));
  EXPECT_TRUE(cli.get_flag("do", false, ""));
}

}  // namespace
}  // namespace dsbfs::util
