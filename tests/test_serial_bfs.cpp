#include "baseline/serial_bfs.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dsbfs::baseline {
namespace {

using graph::build_host_csr;

TEST(SerialBfs, PathDistances) {
  const auto csr = build_host_csr(graph::path_graph(6));
  const auto dist = serial_bfs(csr, 2);
  EXPECT_EQ(dist, (std::vector<Depth>{2, 1, 0, 1, 2, 3}));
}

TEST(SerialBfs, StarFromCenterAndLeaf) {
  const auto csr = build_host_csr(graph::star_graph(5));
  const auto from_center = serial_bfs(csr, 0);
  EXPECT_EQ(from_center, (std::vector<Depth>{0, 1, 1, 1, 1}));
  const auto from_leaf = serial_bfs(csr, 3);
  EXPECT_EQ(from_leaf, (std::vector<Depth>{1, 2, 2, 0, 2}));
}

TEST(SerialBfs, CycleWrapsBothWays) {
  const auto csr = build_host_csr(graph::cycle_graph(6));
  const auto dist = serial_bfs(csr, 0);
  EXPECT_EQ(dist, (std::vector<Depth>{0, 1, 2, 3, 2, 1}));
}

TEST(SerialBfs, UnreachableStaysUnvisited) {
  const auto csr = build_host_csr(graph::two_cliques(3));
  const auto dist = serial_bfs(csr, 1);
  for (VertexId v = 0; v < 3; ++v) EXPECT_NE(dist[v], kUnvisited);
  for (VertexId v = 3; v < 6; ++v) EXPECT_EQ(dist[v], kUnvisited);
}

TEST(SerialBfs, GridManhattanDistances) {
  const auto csr = build_host_csr(graph::grid_graph(5, 4));
  const auto dist = serial_bfs(csr, 0);
  for (std::uint64_t y = 0; y < 4; ++y) {
    for (std::uint64_t x = 0; x < 5; ++x) {
      EXPECT_EQ(dist[y * 5 + x], static_cast<Depth>(x + y));
    }
  }
}

TEST(SerialBfs, SelfLoopHarmless) {
  graph::EdgeList g;
  g.num_vertices = 3;
  g.add(0, 0);
  g.add(0, 1);
  g.add(1, 0);
  const auto dist = serial_bfs(build_host_csr(g), 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnvisited);
}

TEST(SerialBfs, WorkloadSumsVisitedDegrees) {
  const auto csr = build_host_csr(graph::star_graph(5));
  // From the center: all 5 vertices visited; degrees 4 + 1*4 = 8.
  EXPECT_EQ(serial_bfs_workload(csr, 0), 8u);
  // Two cliques: only the source's clique is visited.
  const auto cliques = build_host_csr(graph::two_cliques(3));
  EXPECT_EQ(serial_bfs_workload(cliques, 0), 3u * 2);
}

}  // namespace
}  // namespace dsbfs::baseline
