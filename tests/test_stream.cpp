#include "sim/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace dsbfs::sim {
namespace {

TEST(Stream, TasksRunInEnqueueOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeWaitsForCompletion) {
  Stream s;
  std::atomic<bool> done{false};
  s.enqueue([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  s.synchronize();
  EXPECT_TRUE(done.load());
}

TEST(Stream, RecordEventFiresAfterTask) {
  Stream s;
  std::atomic<int> value{0};
  const Event e = s.record([&value] { value.store(42); });
  e.wait();
  EXPECT_EQ(value.load(), 42);
  EXPECT_TRUE(e.ready());
}

TEST(Stream, RecordMarkerOrdersWithQueue) {
  Stream s;
  std::atomic<int> progress{0};
  s.enqueue([&progress] { progress.store(1); });
  const Event e = s.record_marker();
  e.wait();
  EXPECT_EQ(progress.load(), 1);
}

TEST(Stream, WaitEventBlocksStreamNotCaller) {
  // Mirrors the Fig. 3 usage: the delegate stream waits for the normal
  // previsit event before the dn visit.
  Stream a, b;
  std::atomic<int> stage{0};
  const Event nprev_done = a.record([&stage] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stage.store(1);
  });
  b.wait_event(nprev_done);
  b.enqueue([&stage] {
    // Must observe the a-task's effect.
    EXPECT_EQ(stage.load(), 1);
    stage.store(2);
  });
  b.synchronize();
  EXPECT_EQ(stage.load(), 2);
}

TEST(Stream, TwoStreamsRunConcurrently) {
  Stream a, b;
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    // Would deadlock if streams shared one worker.
    while (arrived.load() < 2) std::this_thread::yield();
  };
  a.enqueue(rendezvous);
  b.enqueue(rendezvous);
  a.synchronize();
  b.synchronize();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(Stream, EventReadyPolling) {
  Stream s;
  std::atomic<bool> release{false};
  const Event e = s.record([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(e.ready());
  release.store(true);
  e.wait();
  EXPECT_TRUE(e.ready());
}

TEST(Stream, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    Stream s;
    for (int i = 0; i < 50; ++i) s.enqueue([&ran] { ran.fetch_add(1); });
    s.synchronize();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(Stream, ManyIterationsOfEnqueueSync) {
  // The BFS driver synchronizes each stream once per iteration; make sure
  // repeated cycles do not wedge.
  Stream s;
  int counter = 0;
  for (int iter = 0; iter < 200; ++iter) {
    s.enqueue([&counter] { ++counter; });
    s.synchronize();
    ASSERT_EQ(counter, iter + 1);
  }
}

}  // namespace
}  // namespace dsbfs::sim
