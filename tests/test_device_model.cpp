#include "sim/device_model.hpp"

#include <gtest/gtest.h>

namespace dsbfs::sim {
namespace {

TEST(DeviceModel, LaunchOverheadAlwaysPaid) {
  DeviceModel m;
  const double empty = m.kernel_us(KernelClass::kPrevisit, 0, 0, 0);
  EXPECT_DOUBLE_EQ(empty, m.config().launch_overhead_us);
}

TEST(DeviceModel, MonotonicInWork) {
  DeviceModel m;
  double prev = 0;
  for (std::uint64_t edges = 0; edges < 1 << 20; edges = edges * 2 + 1) {
    const double t = m.kernel_us(KernelClass::kForwardDynamic, edges, 100, 0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(DeviceModel, MergeBeatsDynamicPerEdge) {
  // dd visits use merge-based load balancing: better effective edge rate.
  DeviceModel m;
  const double merge = m.kernel_us(KernelClass::kForwardMerge, 1 << 20, 0, 0);
  const double dyn = m.kernel_us(KernelClass::kForwardDynamic, 1 << 20, 0, 0);
  EXPECT_LT(merge, dyn);
}

TEST(DeviceModel, BackwardCheaperThanForwardPerEdge) {
  DeviceModel m;
  const double back = m.kernel_us(KernelClass::kBackwardPull, 1 << 20, 0, 0);
  const double fwd = m.kernel_us(KernelClass::kForwardDynamic, 1 << 20, 0, 0);
  EXPECT_LT(back, fwd);
}

TEST(DeviceModel, CalibrationInP100Ballpark) {
  // A P100-class GPU sustains a few billion edge-touches per second; the
  // model should land between 1 and 10 Gedges/s for large forward kernels.
  DeviceModel m;
  const std::uint64_t edges = 1ULL << 28;
  const double us = m.kernel_us(KernelClass::kForwardDynamic, edges, 0, 0);
  const double gedges_per_s = static_cast<double>(edges) / us / 1e3;
  EXPECT_GT(gedges_per_s, 1.0);
  EXPECT_LT(gedges_per_s, 10.0);
}

TEST(DeviceModel, ByteCostsApplyToMaskOps) {
  DeviceModel m;
  const double small = m.kernel_us(KernelClass::kMaskOp, 0, 0, 1 << 10);
  const double large = m.kernel_us(KernelClass::kMaskOp, 0, 0, 1 << 24);
  EXPECT_GT(large, small);
  // ~90 GB/s effective: 16 MB should take roughly 150-350 us.
  EXPECT_GT(large, 100.0);
  EXPECT_LT(large, 500.0);
}

TEST(DeviceModel, ConfigOverridesRespected) {
  DeviceModelConfig cfg;
  cfg.launch_overhead_us = 100.0;
  DeviceModel m(cfg);
  EXPECT_DOUBLE_EQ(m.kernel_us(KernelClass::kPrevisit, 0, 0, 0), 100.0);
}

}  // namespace
}  // namespace dsbfs::sim
