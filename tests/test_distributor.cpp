#include "graph/distributor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::graph {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

TEST(RouteEdge, NormalSourceGoesToSourceOwner) {
  const sim::ClusterSpec spec = spec_of(2, 2);
  const std::vector<std::uint32_t> degrees{1, 1, 10, 10};
  // (0 -> 1): both normal, nn at owner of 0.
  EdgeRoute r = route_edge(0, 1, degrees, 5, spec);
  EXPECT_EQ(r.kind, EdgeKind::kNN);
  EXPECT_EQ(r.gpu, spec.owner_global_gpu(0));
  // (0 -> 2): normal to delegate, nd at owner of 0.
  r = route_edge(0, 2, degrees, 5, spec);
  EXPECT_EQ(r.kind, EdgeKind::kND);
  EXPECT_EQ(r.gpu, spec.owner_global_gpu(0));
}

TEST(RouteEdge, DelegateToNormalGoesToDestinationOwner) {
  const sim::ClusterSpec spec = spec_of(2, 2);
  const std::vector<std::uint32_t> degrees{1, 1, 10, 10};
  const EdgeRoute r = route_edge(2, 1, degrees, 5, spec);
  EXPECT_EQ(r.kind, EdgeKind::kDN);
  EXPECT_EQ(r.gpu, spec.owner_global_gpu(1));
}

TEST(RouteEdge, DelegatePairGoesToLowerDegreeOwner) {
  const sim::ClusterSpec spec = spec_of(3, 1);
  const std::vector<std::uint32_t> degrees{1, 8, 10};
  EdgeRoute r = route_edge(1, 2, degrees, 5, spec);
  EXPECT_EQ(r.kind, EdgeKind::kDD);
  EXPECT_EQ(r.gpu, spec.owner_global_gpu(1));  // degree 8 < 10
  r = route_edge(2, 1, degrees, 5, spec);
  EXPECT_EQ(r.gpu, spec.owner_global_gpu(1));  // same owner both directions
}

TEST(RouteEdge, DelegateTieBreaksByMinVertexId) {
  const sim::ClusterSpec spec = spec_of(4, 1);
  const std::vector<std::uint32_t> degrees{0, 9, 0, 9};
  const EdgeRoute a = route_edge(1, 3, degrees, 5, spec);
  const EdgeRoute b = route_edge(3, 1, degrees, 5, spec);
  EXPECT_EQ(a.gpu, spec.owner_global_gpu(1));
  EXPECT_EQ(b.gpu, spec.owner_global_gpu(1));
}

TEST(Distributor, EdgeConservation) {
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 3});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 16);
  const sim::ClusterSpec spec = spec_of(2, 2);
  const DistributedEdges dist = distribute_edges(g, degrees, delegates, spec);
  std::uint64_t placed = 0;
  for (const auto& sets : dist.gpus) placed += sets.total_edges();
  EXPECT_EQ(placed, g.size());
  EXPECT_EQ(dist.enn + dist.end + dist.edn + dist.edd, g.size());
}

TEST(Distributor, NdAndDnCountsEqualOnSymmetricGraphs) {
  // Every nd edge (v -> t) pairs with a dn edge (t -> v); symmetry.
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 4});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 16);
  const DistributedEdges dist =
      distribute_edges(g, degrees, delegates, spec_of(2, 2));
  EXPECT_EQ(dist.end, dist.edn);
}

TEST(Distributor, NonNnSubgraphsAreLocallySymmetric) {
  // The paper's key property: except nn, subgraphs on individual GPUs are
  // symmetric -- the undirected pair lands on one GPU.
  const EdgeList g = rmat_graph500({.scale = 9, .seed = 5});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 8);
  const sim::ClusterSpec spec = spec_of(3, 2);
  const DistributedEdges dist = distribute_edges(g, degrees, delegates, spec);

  for (std::size_t gpu = 0; gpu < dist.gpus.size(); ++gpu) {
    const auto& sets = dist.gpus[gpu];
    // dd pairs within the GPU.
    std::multiset<std::pair<LocalId, LocalId>> dd;
    for (std::size_t i = 0; i < sets.dd_rows.size(); ++i) {
      dd.insert({static_cast<LocalId>(sets.dd_rows[i]), sets.dd_cols[i]});
    }
    for (const auto& [a, b] : dd) {
      EXPECT_GT(dd.count({b, a}), 0u) << "gpu " << gpu;
    }
    // nd (v -> t) must pair with dn (t -> v) on the same GPU.
    std::multiset<std::pair<LocalId, LocalId>> dn;
    for (std::size_t i = 0; i < sets.dn_rows.size(); ++i) {
      dn.insert({static_cast<LocalId>(sets.dn_rows[i]), sets.dn_cols[i]});
    }
    for (std::size_t i = 0; i < sets.nd_rows.size(); ++i) {
      EXPECT_GT(dn.count({sets.nd_cols[i],
                          static_cast<LocalId>(sets.nd_rows[i])}),
                0u)
          << "gpu " << gpu;
    }
    EXPECT_EQ(sets.nd_rows.size(), sets.dn_rows.size());
  }
}

TEST(Distributor, LocalIndicesAreBounded) {
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 6});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 16);
  const sim::ClusterSpec spec = spec_of(2, 2);
  const DistributedEdges dist = distribute_edges(g, degrees, delegates, spec);
  const std::uint64_t local_bound =
      (g.num_vertices + 3) / static_cast<std::uint64_t>(spec.total_gpus());
  const LocalId d = delegates.count();
  for (const auto& sets : dist.gpus) {
    for (const auto r : sets.nn_rows) EXPECT_LE(r, local_bound);
    for (const auto r : sets.nd_rows) EXPECT_LE(r, local_bound);
    for (const auto c : sets.nd_cols) EXPECT_LT(c, d);
    for (const auto r : sets.dn_rows) EXPECT_LT(r, d);
    for (const auto c : sets.dn_cols) EXPECT_LE(c, local_bound);
    for (const auto r : sets.dd_rows) EXPECT_LT(r, d);
    for (const auto c : sets.dd_cols) EXPECT_LT(c, d);
  }
}

TEST(Distributor, WorkloadBalancedOnRmat) {
  // "The number of edges in the partitioned subgraphs on individual GPUs
  // are very close to each other."
  const EdgeList g = rmat_graph500({.scale = 13, .seed = 7});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 32);
  const DistributedEdges dist =
      distribute_edges(g, degrees, delegates, spec_of(4, 2));
  std::uint64_t min_edges = ~0ULL, max_edges = 0;
  for (const auto& sets : dist.gpus) {
    min_edges = std::min(min_edges, sets.total_edges());
    max_edges = std::max(max_edges, sets.total_edges());
  }
  EXPECT_LT(static_cast<double>(max_edges),
            1.25 * static_cast<double>(min_edges));
}

TEST(Distributor, DeterministicOutput) {
  const EdgeList g = rmat_graph500({.scale = 9, .seed = 8});
  const auto degrees = out_degrees(g);
  const auto delegates = DelegateInfo::select(degrees, 8);
  const auto a = distribute_edges(g, degrees, delegates, spec_of(2, 2));
  const auto b = distribute_edges(g, degrees, delegates, spec_of(2, 2));
  for (std::size_t gpu = 0; gpu < a.gpus.size(); ++gpu) {
    EXPECT_EQ(a.gpus[gpu].nn_cols, b.gpus[gpu].nn_cols);
    EXPECT_EQ(a.gpus[gpu].dd_cols, b.gpus[gpu].dd_cols);
  }
}

TEST(Distributor, PaperFigure2Example) {
  // Fig. 2's graph distributed over 3 partitions with TH = 5: delegates are
  // 7 -> 0 and 8 -> 1; all edges incident to a delegate stay local to the
  // normal endpoint's partition.
  EdgeList g;
  g.num_vertices = 11;
  for (const VertexId v : {0, 1, 2, 3, 4, 5}) g.add(7, v);
  for (const VertexId v : {4, 5, 6, 9, 10, 3}) g.add(8, v);
  g.add(0, 1);
  const EdgeList s = make_symmetric(g);
  const auto degrees = out_degrees(s);
  const auto delegates = DelegateInfo::select(degrees, 5);
  const sim::ClusterSpec spec = spec_of(3, 1);
  const DistributedEdges dist = distribute_edges(s, degrees, delegates, spec);

  // Every dn edge's destination is owned by the GPU it landed on.
  for (int gpu = 0; gpu < 3; ++gpu) {
    const auto& sets = dist.gpus[static_cast<std::size_t>(gpu)];
    for (std::size_t i = 0; i < sets.dn_cols.size(); ++i) {
      // Column is a local normal index of this GPU by construction -- that
      // is exactly the claim being tested: reconstruct the global id.
      const VertexId global = spec.global_vertex(
          spec.coord_of(gpu).rank, spec.coord_of(gpu).gpu, sets.dn_cols[i]);
      EXPECT_EQ(spec.owner_global_gpu(global), gpu);
    }
  }
  // No nn edge involves vertices 7 or 8 (they are delegates).
  EXPECT_EQ(dist.edd, 0u);  // 7 and 8 are not adjacent in this graph
  EXPECT_EQ(dist.enn, 2u);  // only 0<->1
}

}  // namespace
}  // namespace dsbfs::graph
