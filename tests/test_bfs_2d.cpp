#include "baseline/bfs_2d.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::baseline {
namespace {

TEST(Bfs2d, MatchesSerialOnRmat) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 41});
  const auto csr = graph::build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  const auto expected = serial_bfs(csr, source);
  for (const int p : {1, 4, 9, 16}) {
    EXPECT_EQ(bfs_2d(g, p, source).distances, expected) << "p=" << p;
  }
}

TEST(Bfs2d, MatchesSerialOnNamedGraphs) {
  for (const auto& g : {graph::path_graph(30), graph::grid_graph(5, 6),
                        graph::star_graph(25)}) {
    const auto expected = serial_bfs(graph::build_host_csr(g), 0);
    EXPECT_EQ(bfs_2d(g, 4, 0).distances, expected);
  }
}

TEST(Bfs2d, TrafficGrowsWithGridSize) {
  // Section II-B: 2D communication scales with sqrt(p) * log(sqrt(p)); the
  // per-iteration column allgather charges more hops on bigger grids.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 11, .seed = 42});
  const auto r4 = bfs_2d(g, 4, 1);
  const auto r64 = bfs_2d(g, 64, 1);
  EXPECT_GT(r64.bytes_allgather, r4.bytes_allgather);
}

TEST(Bfs2d, CountsBothPhases) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 43});
  const auto csr = graph::build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  const auto r = bfs_2d(g, 16, source);
  EXPECT_GT(r.bytes_allgather, 0u);
  EXPECT_GT(r.bytes_reduce, 0u);
  EXPECT_GT(r.iterations, 1);
  EXPECT_GT(r.edges_examined, 0u);
}

TEST(Bfs2d, NonSquareProcessorCount) {
  // 6 = 2x3 grid; correctness must not require a perfect square.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 44});
  const auto csr = graph::build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  EXPECT_EQ(bfs_2d(g, 6, source).distances, serial_bfs(csr, source));
}

}  // namespace
}  // namespace dsbfs::baseline
