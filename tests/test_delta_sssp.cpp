#include "core/delta_sssp.hpp"

#include <gtest/gtest.h>

#include <span>

#include "baseline/host_apps.hpp"
#include "core/sssp.hpp"
#include "graph/csr.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

/// RMAT label randomization leaves isolated vertices scattered across the
/// id space; counter/byte assertions need a source that actually traverses.
VertexId first_connected_source(const graph::EdgeList& g) {
  const auto degrees = graph::out_degrees(g);
  VertexId source = 0;
  while (source < g.num_vertices && degrees[source] == 0) ++source;
  return source;
}

DeltaSsspResult run_delta(const graph::EdgeList& g, sim::ClusterSpec spec,
                          std::uint32_t th, VertexId source,
                          DeltaSsspOptions options = {}) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
  DistributedDeltaSssp sssp(dg, cluster, options);
  return sssp.run(source);
}

TEST(DeltaSssp, MatchesSerialOraclesOnNamedGraphs) {
  for (const std::uint64_t delta : {std::uint64_t{1}, std::uint64_t{4},
                                    std::uint64_t{9}, kInfiniteDistance}) {
    for (const auto& [g, source] :
         {std::pair{graph::star_graph(40), VertexId{1}},
          std::pair{graph::path_graph(30), VertexId{0}},
          std::pair{graph::grid_graph(6, 5), VertexId{7}},
          std::pair{graph::cycle_graph(24), VertexId{5}}}) {
      const graph::HostCsr host = graph::build_host_csr(g);
      baseline::SerialDeltaStats stats;
      const auto oracle =
          baseline::serial_delta_sssp(host, source, delta, 15, &stats);
      // The oracle itself must agree with plain Bellman-Ford.
      ASSERT_EQ(oracle, baseline::serial_sssp(host, source));

      const DeltaSsspResult r =
          run_delta(g, spec_of(2, 2), 4, source, {.delta = delta});
      ASSERT_EQ(r.distances, oracle) << "delta " << delta;
      EXPECT_EQ(r.buckets_processed, stats.buckets_processed)
          << "delta " << delta;
    }
  }
}

TEST(DeltaSssp, DelegateSourceMatchesSerial) {
  // Threshold 0 makes every vertex with an edge a delegate, so the source
  // is seeded through the replicated delegate-bucket path on every GPU.
  const graph::EdgeList g = graph::star_graph(20);
  const auto oracle =
      baseline::serial_delta_sssp(graph::build_host_csr(g), 0, 4);
  const DeltaSsspResult r = run_delta(g, spec_of(2, 2), 0, 0, {.delta = 4});
  ASSERT_EQ(r.distances, oracle);
}

struct DeltaCase {
  const char* name;
  int ranks, gpus;
  std::uint32_t th;
  std::uint64_t delta;
};

class DeltaSweep : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaSweep, RmatHashedWeightsMatchSerialDeltaAndBellmanFord) {
  const DeltaCase c = GetParam();
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 77});
  const auto spec = spec_of(c.ranks, c.gpus);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, c.th);
  DistributedDeltaSssp sssp(dg, cluster, {.delta = c.delta});
  const graph::HostCsr host = graph::build_host_csr(g);
  for (const VertexId source : {VertexId{1}, VertexId{42}}) {
    baseline::SerialDeltaStats stats;
    const auto oracle =
        baseline::serial_delta_sssp(host, source, c.delta, 15, &stats);
    const DeltaSsspResult r = sssp.run(source);
    ASSERT_EQ(r.distances.size(), oracle.size());
    for (VertexId v = 0; v < oracle.size(); ++v) {
      ASSERT_EQ(r.distances[v], oracle[v])
          << "vertex " << v << " source " << source << " case " << c.name;
    }
    EXPECT_EQ(r.buckets_processed, stats.buckets_processed) << c.name;
    EXPECT_GT(r.iterations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaSweep,
    ::testing::Values(DeltaCase{"single", 1, 1, 16, 8},
                      DeltaCase{"quad", 2, 2, 16, 8},
                      DeltaCase{"wide", 4, 2, 32, 3},
                      DeltaCase{"all_delegates", 2, 1, 0, 8},
                      DeltaCase{"no_delegates", 2, 2, 1u << 20, 8},
                      DeltaCase{"unit_delta", 2, 2, 16, 1}),
    [](const auto& info) { return info.param.name; });

TEST(DeltaSssp, StoredWeightsMatchSerialOracles) {
  graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 32});
  graph::assign_uniform_weights(g, 24, 13);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  ASSERT_TRUE(dg.weighted());
  const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
  const std::span<const std::uint32_t> weights(host.weights);

  baseline::SerialDeltaStats stats;
  const auto oracle =
      baseline::serial_delta_sssp(host.csr, weights, 1, 6, &stats);
  ASSERT_EQ(oracle, baseline::serial_sssp(host.csr, weights, 1));

  const DeltaSsspResult r =
      DistributedDeltaSssp(dg, cluster, {.delta = 6}).run(1);
  ASSERT_EQ(r.distances, oracle);
  EXPECT_EQ(r.buckets_processed, stats.buckets_processed);
  // Weights reach 24 against delta 6, so real heavy rounds must happen.
  EXPECT_GT(r.heavy_relaxations, 0u);
  EXPECT_GT(r.light_relaxations, 0u);
}

TEST(DeltaSssp, StoredWeightsMatchSerialOnWeightedGrid) {
  for (const std::uint32_t th : {std::uint32_t{0}, std::uint32_t{4}}) {
    graph::EdgeList g = graph::grid_graph(7, 5);
    graph::assign_uniform_weights(g, 100, 3);
    const auto spec = spec_of(2, 2);
    sim::Cluster cluster(spec);
    const graph::DistributedGraph dg = graph::build_distributed(g, spec, th);
    const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
    const auto oracle = baseline::serial_delta_sssp(
        host.csr, std::span<const std::uint32_t>(host.weights), 0, 16);
    const DeltaSsspResult r =
        DistributedDeltaSssp(dg, cluster, {.delta = 16}).run(0);
    ASSERT_EQ(r.distances, oracle) << "threshold " << th;
  }
}

TEST(DeltaSssp, AgreesWithBellmanFordCoreSssp) {
  // Same weighted graph, both distributed algorithms: distances must be
  // bit-identical (they are the unique shortest paths).
  graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 55});
  graph::assign_uniform_weights(g, 20, 9);
  const VertexId source = first_connected_source(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const SsspResult bf = DistributedSssp(dg, cluster).run(source);
  const DeltaSsspResult ds =
      DistributedDeltaSssp(dg, cluster, {.delta = 5}).run(source);
  ASSERT_EQ(ds.distances, bf.distances);
  EXPECT_GT(ds.buckets_processed, 1u);
}

TEST(DeltaSssp, InfiniteDeltaReducesToBellmanFord) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 31});
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);

  const DeltaSsspResult r =
      DistributedDeltaSssp(dg, cluster, {.delta = kInfiniteDistance}).run(1);
  // One bucket, no heavy edges: the degenerate delta is exactly the
  // Bellman-Ford round structure of core::sssp.
  EXPECT_EQ(r.buckets_processed, 1u);
  EXPECT_EQ(r.heavy_relaxations, 0u);
  EXPECT_EQ(r.heavy_iterations, 1);  // the (empty) closing heavy round
  const SsspResult bf = DistributedSssp(dg, cluster).run(1);
  ASSERT_EQ(r.distances, bf.distances);
}

TEST(DeltaSssp, BucketCountersTrackRounds) {
  graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 8});
  graph::assign_uniform_weights(g, 30, 4);
  const VertexId source = first_connected_source(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);
  const DeltaSsspResult r =
      DistributedDeltaSssp(dg, cluster, {.delta = 4}).run(source);

  EXPECT_GT(r.buckets_processed, 1u);
  // Every bucket runs >= 1 light round and exactly one heavy round, plus
  // the final empty coordination round.
  EXPECT_EQ(static_cast<std::uint64_t>(r.heavy_iterations),
            r.buckets_processed);
  EXPECT_GE(static_cast<std::uint64_t>(r.light_iterations),
            r.buckets_processed);
  // Plus at most one final empty coordination round (it only runs when
  // stale bucket entries survive the last heavy round).
  EXPECT_GE(r.iterations, r.light_iterations + r.heavy_iterations);
  EXPECT_LE(r.iterations, r.light_iterations + r.heavy_iterations + 1);
  EXPECT_GT(r.light_relaxations, 0u);
  EXPECT_GT(r.heavy_relaxations, 0u);
  EXPECT_GT(r.modeled_ms, 0.0);
  EXPECT_GT(r.update_bytes_remote, 0u);
  EXPECT_GT(r.reduce_bytes, 0u);
  // Per-round trace marks the bucket rounds it recorded.
  ASSERT_FALSE(r.counters.iterations.empty());
  EXPECT_TRUE(r.counters.iterations[0].gpu[0].bucket_coordination);
}

TEST(DeltaSssp, ExchangeOptionsAreBitExactAndBiasShrinksWire) {
  graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 21});
  graph::assign_uniform_weights(g, 12, 2);
  const VertexId source = first_connected_source(g);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 16);

  DeltaSsspOptions plain{.delta = 5, .uniquify = false, .compress = false};
  DeltaSsspOptions packed{.delta = 5,
                          .uniquify = true,
                          .compress = true,
                          .bucket_bias = false};
  DeltaSsspOptions tagged{.delta = 5,
                          .uniquify = true,
                          .compress = true,
                          .bucket_bias = true};
  const DeltaSsspResult r0 =
      DistributedDeltaSssp(dg, cluster, plain).run(source);
  const DeltaSsspResult r1 =
      DistributedDeltaSssp(dg, cluster, packed).run(source);
  const DeltaSsspResult r2 =
      DistributedDeltaSssp(dg, cluster, tagged).run(source);
  ASSERT_EQ(r0.distances, r1.distances);
  ASSERT_EQ(r0.distances, r2.distances);
  ASSERT_GT(r1.update_bytes_remote, 0u);
  // Every value shipped while bucket b is open is >= b * delta, so biasing
  // by the bucket base never lengthens a varint: tagged wire bytes <= plain
  // compressed wire bytes.
  EXPECT_LE(r2.update_bytes_remote, r1.update_bytes_remote);
}

TEST(DeltaSssp, UnreachableVerticesReportInfinity) {
  graph::EdgeList g;
  g.num_vertices = 8;
  g.add(0, 1);
  g.add(1, 0);
  const DeltaSsspResult r = run_delta(g, spec_of(2, 1), 4, 0, {.delta = 4});
  EXPECT_EQ(r.distances[0], 0u);
  EXPECT_NE(r.distances[1], kInfiniteDistance);
  for (VertexId v = 2; v < 8; ++v) {
    EXPECT_EQ(r.distances[v], kInfiniteDistance) << v;
  }
}

TEST(DeltaSssp, RejectsBadArguments) {
  const graph::EdgeList g = graph::path_graph(8);
  const auto spec = spec_of(2, 1);
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = graph::build_distributed(g, spec, 4);
  DistributedDeltaSssp sssp(dg, cluster);
  EXPECT_THROW(sssp.run(1000), std::out_of_range);
  EXPECT_THROW(DistributedDeltaSssp(dg, cluster, DeltaSsspOptions{.delta = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      DistributedDeltaSssp(dg, cluster, DeltaSsspOptions{.max_weight = 0}),
      std::invalid_argument);
  sim::Cluster wrong(spec_of(4, 1));
  EXPECT_THROW(DistributedDeltaSssp(dg, wrong), std::invalid_argument);
}

TEST(SerialDeltaSssp, StatsReflectLightHeavySplit) {
  graph::EdgeList g = graph::grid_graph(6, 6);
  graph::assign_uniform_weights(g, 40, 11);
  const graph::WeightedHostCsr host = graph::build_weighted_host_csr(g);
  baseline::SerialDeltaStats stats;
  const auto dist = baseline::serial_delta_sssp(
      host.csr, std::span<const std::uint32_t>(host.weights), 0, 10, &stats);
  EXPECT_EQ(dist, baseline::serial_sssp(
                      host.csr, std::span<const std::uint32_t>(host.weights),
                      0));
  EXPECT_GT(stats.buckets_processed, 1u);
  EXPECT_GE(stats.light_phases, stats.buckets_processed);
  EXPECT_GT(stats.light_relaxations, 0u);
  EXPECT_GT(stats.heavy_relaxations, 0u);
}

TEST(SerialDeltaSssp, RejectsBadArguments) {
  const graph::HostCsr host = graph::build_host_csr(graph::path_graph(4));
  EXPECT_THROW(baseline::serial_delta_sssp(host, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(baseline::serial_delta_sssp(host, 0, 4, 0),
               std::invalid_argument);
  const std::vector<std::uint32_t> short_weights(1, 1);
  EXPECT_THROW(
      baseline::serial_delta_sssp(
          host, std::span<const std::uint32_t>(short_weights), 0, 4),
      std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::core
