#include "core/query_scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baseline/serial_bfs.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

/// Serving-tier soak: random seeded arrival traces (uniform / bursty /
/// adversarial single-lane trickle) across the lane-width ladder and both
/// graph families.  Every retired query must be bit-exact against the
/// serial single-source reference, the replicated lane-ownership event log
/// must show no lane ever serving two queries at once (the claim-word
/// audit), admissions must be FIFO, and the same seed must reproduce the
/// identical schedule, metrics and modeled clock.
namespace dsbfs::core {
namespace {

enum class GraphFamily { kRmat, kGrid };

struct SchedCase {
  std::string name;
  GraphFamily family;
  int ranks, gpus;
  std::uint32_t threshold;
  std::size_t width;
  ArrivalPattern pattern;
  double rate;
  std::uint64_t queries;
  std::uint64_t seed;
  bool recycle = true;
};

graph::EdgeList make_graph(GraphFamily family) {
  switch (family) {
    case GraphFamily::kRmat:
      return graph::rmat_graph500({.scale = 10, .seed = 81});
    case GraphFamily::kGrid:
      return graph::grid_graph(32, 32);
  }
  return {};
}

/// Replay the replicated lane-ownership audit log: admissions are FIFO in
/// trace order, a lane is claimed only while free, released only by its
/// occupant, and every query is admitted and retired exactly once.
void audit_events(const SchedulerOutcome& out, std::size_t width) {
  std::vector<std::int64_t> owner(width, -1);
  std::vector<int> admitted(out.queries.size(), 0);
  std::vector<int> retired(out.queries.size(), 0);
  std::size_t next_fifo = 0;
  for (const LaneEvent& e : out.events) {
    ASSERT_GE(e.lane, 0);
    ASSERT_LT(static_cast<std::size_t>(e.lane), width);
    ASSERT_LT(e.query, out.queries.size());
    const auto li = static_cast<std::size_t>(e.lane);
    if (e.kind == LaneEventKind::kAdmit) {
      EXPECT_EQ(owner[li], -1)
          << "lane " << e.lane << " admitted query " << e.query
          << " while still serving query " << owner[li];
      owner[li] = static_cast<std::int64_t>(e.query);
      EXPECT_EQ(e.query, next_fifo) << "admission out of trace order";
      ++next_fifo;
      ++admitted[e.query];
      EXPECT_EQ(e.iteration, out.queries[e.query].admit_iteration);
      EXPECT_GE(e.iteration, out.queries[e.query].arrival_iteration);
    } else {
      EXPECT_EQ(owner[li], static_cast<std::int64_t>(e.query))
          << "lane " << e.lane << " retired by a non-occupant";
      owner[li] = -1;
      ++retired[e.query];
      EXPECT_EQ(e.iteration, out.queries[e.query].retire_iteration);
    }
  }
  for (std::size_t q = 0; q < out.queries.size(); ++q) {
    EXPECT_EQ(admitted[q], 1) << "query " << q;
    EXPECT_EQ(retired[q], 1) << "query " << q;
  }
  for (std::size_t l = 0; l < width; ++l) {
    EXPECT_EQ(owner[l], -1) << "lane " << l << " never released";
  }
}

class QuerySchedulerSoak : public ::testing::TestWithParam<SchedCase> {};

TEST_P(QuerySchedulerSoak, EveryServedQueryMatchesSerialDeterministically) {
  const SchedCase c = GetParam();
  const graph::EdgeList g = make_graph(c.family);
  sim::ClusterSpec spec;
  spec.num_ranks = c.ranks;
  spec.gpus_per_rank = c.gpus;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, c.threshold);
  const graph::HostCsr csr = graph::build_host_csr(g);

  const std::vector<QueryArrival> trace = make_arrival_trace(
      dg, {.queries = c.queries,
           .rate = c.rate,
           .pattern = c.pattern,
           .seed = c.seed});
  ASSERT_EQ(trace.size(), c.queries);

  SchedulerOptions options;
  options.width = c.width;
  options.recycle = c.recycle;
  QueryScheduler scheduler(dg, cluster, options);
  const SchedulerOutcome out = scheduler.run(trace);

  EXPECT_EQ(out.lane_bits, util::lane_width_for(c.width));
  ASSERT_EQ(out.queries.size(), c.queries);

  // Bit-exact distances per retired query (oracle memoized per source).
  std::map<VertexId, std::vector<Depth>> oracle;
  for (std::size_t i = 0; i < out.queries.size(); ++i) {
    const ServedQuery& q = out.queries[i];
    auto it = oracle.find(q.source);
    if (it == oracle.end()) {
      it = oracle.emplace(q.source, baseline::serial_bfs(csr, q.source)).first;
    }
    const ValidationReport ref =
        validate_against_reference(q.distances, it->second);
    ASSERT_TRUE(ref.ok) << "query " << i << " (source " << q.source
                        << "): " << ref.error;
    EXPECT_GE(q.admit_iteration, q.arrival_iteration) << "query " << i;
    EXPECT_GE(q.retire_iteration, q.admit_iteration) << "query " << i;
    EXPECT_GE(q.wait_ms, 0.0) << "query " << i;
    EXPECT_GT(q.service_ms, 0.0) << "query " << i;
  }

  audit_events(out, c.width);

  // Mid-flight recycling actually happened whenever the trace outnumbers
  // the lane budget (otherwise nothing to recycle).
  EXPECT_EQ(out.metrics.admissions, c.queries);
  if (c.recycle && c.queries > c.width) {
    EXPECT_GT(out.metrics.recycled_admissions, 0u);
    EXPECT_GT(out.metrics.reseed_bytes, 0u);
  }

  // Same seed => the identical trace, admission order, schedule, metrics
  // and modeled clock.
  const std::vector<QueryArrival> trace2 = make_arrival_trace(
      dg, {.queries = c.queries,
           .rate = c.rate,
           .pattern = c.pattern,
           .seed = c.seed});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].source, trace2[i].source);
    EXPECT_EQ(trace[i].arrival_iteration, trace2[i].arrival_iteration);
  }
  const SchedulerOutcome rerun = scheduler.run(trace2);
  EXPECT_EQ(rerun.metrics.modeled_ms, out.metrics.modeled_ms);
  EXPECT_EQ(rerun.metrics.queries_per_sec, out.metrics.queries_per_sec);
  EXPECT_EQ(rerun.metrics.latency.p99, out.metrics.latency.p99);
  ASSERT_EQ(rerun.events.size(), out.events.size());
  for (std::size_t i = 0; i < out.events.size(); ++i) {
    EXPECT_EQ(rerun.events[i].kind, out.events[i].kind);
    EXPECT_EQ(rerun.events[i].iteration, out.events[i].iteration);
    EXPECT_EQ(rerun.events[i].lane, out.events[i].lane);
    EXPECT_EQ(rerun.events[i].query, out.events[i].query);
  }
  for (std::size_t i = 0; i < out.queries.size(); ++i) {
    EXPECT_EQ(rerun.queries[i].lane, out.queries[i].lane);
    EXPECT_EQ(rerun.queries[i].admit_iteration, out.queries[i].admit_iteration);
    EXPECT_EQ(rerun.queries[i].retire_iteration,
              out.queries[i].retire_iteration);
    EXPECT_EQ(rerun.queries[i].latency_ms, out.queries[i].latency_ms);
  }
}

std::vector<SchedCase> sched_cases() {
  using P = ArrivalPattern;
  return {
      // Lane-width ladder on RMAT across all three arrival shapes.
      {"rmat_w1_uniform", GraphFamily::kRmat, 2, 2, 16, 1, P::kUniform, 1.0,
       6, 21},
      {"rmat_w8_bursty", GraphFamily::kRmat, 2, 2, 16, 8, P::kBursty, 4.0,
       24, 22},
      {"rmat_w8_trickle", GraphFamily::kRmat, 2, 2, 16, 8, P::kTrickle, 0.5,
       10, 23},
      {"rmat_w32_uniform", GraphFamily::kRmat, 2, 2, 16, 32, P::kUniform, 8.0,
       40, 24},
      {"rmat_w64_bursty", GraphFamily::kRmat, 2, 2, 16, 64, P::kBursty, 16.0,
       64, 25},
      // Batch-drain ablation: no mid-flight recycling.
      {"rmat_w8_nodrain", GraphFamily::kRmat, 2, 2, 16, 8, P::kUniform, 4.0,
       24, 26, /*recycle=*/false},
      // Grid (high diameter: long service times, deep admission queues).
      {"grid_w8_uniform", GraphFamily::kGrid, 2, 2, 4, 8, P::kUniform, 2.0,
       12, 27},
      {"grid_w32_trickle", GraphFamily::kGrid, 2, 2, 4, 32, P::kTrickle, 1.0,
       8, 28},
      // Asymmetric topology.
      {"rmat_w8_4x1", GraphFamily::kRmat, 4, 1, 16, 8, P::kBursty, 8.0,
       24, 29},
  };
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuerySchedulerSoak,
                         ::testing::ValuesIn(sched_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(QueryScheduler, BatchDrainAdmitsOnlyIntoAnEmptyBatch) {
  // recycle=false: an admission boundary must come after every previously
  // admitted query retired -- the event log shows no admit while any lane
  // is occupied.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 84});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);
  const std::vector<QueryArrival> trace = make_arrival_trace(
      dg, {.queries = 12, .rate = 8.0, .pattern = ArrivalPattern::kUniform,
           .seed = 31});
  QueryScheduler scheduler(dg, cluster, {.width = 4, .recycle = false});
  const SchedulerOutcome out = scheduler.run(trace);
  std::size_t occupied = 0;
  std::uint64_t wave_start = 0;
  for (const LaneEvent& e : out.events) {
    if (e.kind == LaneEventKind::kAdmit) {
      if (occupied == 0) wave_start = e.iteration;
      EXPECT_EQ(e.iteration, wave_start)
          << "admit into a partially drained batch";
      ++occupied;
    } else {
      ASSERT_GT(occupied, 0u);
      --occupied;
    }
  }
  EXPECT_EQ(occupied, 0u);
  // Later waves still reseed the previously used lanes -- recycling off
  // changes the admission policy, not the reseed bookkeeping.
  EXPECT_EQ(out.metrics.recycled_admissions, trace.size() - 4);
  EXPECT_GT(out.metrics.reseed_bytes, 0u);
}

TEST(QueryScheduler, EmptyTraceServesNothing) {
  const graph::EdgeList g = graph::path_graph(8);
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 4);
  QueryScheduler scheduler(dg, cluster, {.width = 4});
  const SchedulerOutcome out = scheduler.run(std::vector<QueryArrival>{});
  EXPECT_EQ(out.metrics.queries, 0u);
  EXPECT_TRUE(out.queries.empty());
  EXPECT_TRUE(out.events.empty());
  EXPECT_EQ(out.metrics.queries_per_sec, 0.0);
  EXPECT_EQ(out.metrics.latency.count, 0u);
}

TEST(QueryScheduler, RejectsBadTracesAndWidths) {
  const graph::EdgeList g = graph::path_graph(8);
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 4);
  EXPECT_THROW(QueryScheduler(dg, cluster, {.width = 0}),
               std::invalid_argument);
  EXPECT_THROW(QueryScheduler(dg, cluster, {.width = 65}),
               std::invalid_argument);
  QueryScheduler scheduler(dg, cluster, {.width = 4});
  EXPECT_THROW(
      scheduler.run(std::vector<QueryArrival>{{999, 0}}), std::out_of_range);
  EXPECT_THROW(
      scheduler.run(std::vector<QueryArrival>{{1, 5}, {2, 3}}),
      std::invalid_argument);
  EXPECT_THROW(make_arrival_trace(dg, {.rate = 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::core
