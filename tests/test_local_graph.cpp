#include "graph/local_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::graph {
namespace {

TEST(LocalNormalCount, PartitionsExactly) {
  sim::ClusterSpec spec;
  spec.num_ranks = 3;
  spec.gpus_per_rank = 2;
  const VertexId n = 1001;  // deliberately not divisible by 6
  std::uint64_t total = 0;
  for (int g = 0; g < spec.total_gpus(); ++g) {
    total += local_normal_count(spec, spec.coord_of(g), n);
  }
  EXPECT_EQ(total, n);
}

TEST(LocalNormalCount, MatchesOwnershipEnumeration) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 2;
  const VertexId n = 333;
  std::vector<std::uint64_t> counted(static_cast<std::size_t>(spec.total_gpus()));
  for (VertexId v = 0; v < n; ++v) {
    ++counted[static_cast<std::size_t>(spec.owner_global_gpu(v))];
  }
  for (int g = 0; g < spec.total_gpus(); ++g) {
    EXPECT_EQ(local_normal_count(spec, spec.coord_of(g), n),
              counted[static_cast<std::size_t>(g)])
        << "gpu " << g;
  }
}

TEST(LocalNormalCount, TinyGraphSomeGpusEmpty) {
  sim::ClusterSpec spec;
  spec.num_ranks = 8;
  spec.gpus_per_rank = 1;
  std::uint64_t total = 0;
  for (int g = 0; g < 8; ++g) {
    total += local_normal_count(spec, spec.coord_of(g), 3);
  }
  EXPECT_EQ(total, 3u);
}

class LocalGraphFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.num_ranks = 2;
    spec_.gpus_per_rank = 2;
    graph_ = rmat_graph500({.scale = 10, .seed = 11});
    built_ = build_distributed(graph_, spec_, /*threshold=*/16);
  }
  sim::ClusterSpec spec_;
  EdgeList graph_;
  DistributedGraph built_;
};

TEST_F(LocalGraphFixture, SubgraphRowCountsMatchSpec) {
  for (int g = 0; g < spec_.total_gpus(); ++g) {
    const LocalGraph& lg = built_.local(g);
    EXPECT_EQ(lg.nn().num_rows(), lg.num_local_normals());
    EXPECT_EQ(lg.nd().num_rows(), lg.num_local_normals());
    EXPECT_EQ(lg.dn().num_rows(), lg.num_delegates());
    EXPECT_EQ(lg.dd().num_rows(), lg.num_delegates());
    EXPECT_EQ(lg.num_delegates(), built_.num_delegates());
  }
}

TEST_F(LocalGraphFixture, SourceListMatchesNdRows) {
  for (int g = 0; g < spec_.total_gpus(); ++g) {
    const LocalGraph& lg = built_.local(g);
    std::uint64_t with_nd = 0;
    for (std::uint64_t v = 0; v < lg.num_local_normals(); ++v) {
      if (lg.nd().row_length(v) > 0) {
        ++with_nd;
        EXPECT_TRUE(lg.nd_source_mask().test(v));
      } else {
        EXPECT_FALSE(lg.nd_source_mask().test(v));
      }
    }
    EXPECT_EQ(lg.nd_source_list().size(), with_nd);
    EXPECT_EQ(lg.nd_source_count(), with_nd);
  }
}

TEST_F(LocalGraphFixture, SourceMasksMatchDdDnRows) {
  for (int g = 0; g < spec_.total_gpus(); ++g) {
    const LocalGraph& lg = built_.local(g);
    std::uint64_t dd_sources = 0, dn_sources = 0;
    for (LocalId t = 0; t < lg.num_delegates(); ++t) {
      EXPECT_EQ(lg.dd_source_mask().test(t), lg.dd().row_length(t) > 0);
      EXPECT_EQ(lg.dn_source_mask().test(t), lg.dn().row_length(t) > 0);
      dd_sources += lg.dd().row_length(t) > 0 ? 1 : 0;
      dn_sources += lg.dn().row_length(t) > 0 ? 1 : 0;
    }
    EXPECT_EQ(lg.dd_source_count(), dd_sources);
    EXPECT_EQ(lg.dn_source_count(), dn_sources);
  }
}

TEST_F(LocalGraphFixture, MemoryUsageMatchesCsrFootprints) {
  for (int g = 0; g < spec_.total_gpus(); ++g) {
    const LocalGraph& lg = built_.local(g);
    const MemoryUsage m = lg.memory_usage();
    EXPECT_EQ(m.nn_bytes, lg.nn().storage_bytes());
    EXPECT_EQ(m.dd_bytes, lg.dd().storage_bytes());
    EXPECT_GT(m.aux_bytes, 0u);
    EXPECT_EQ(m.total_bytes(), m.subgraph_bytes() + m.aux_bytes);
  }
}

TEST_F(LocalGraphFixture, RegisterOnDeviceAccountsBytes) {
  sim::Device device(0, sim::DeviceMemoryConfig{});
  const LocalGraph& lg = built_.local(0);
  lg.register_on(device);
  EXPECT_EQ(device.allocated_bytes(), lg.memory_usage().total_bytes());
  EXPECT_EQ(device.allocations().size(), 5u);
}

TEST(LocalGraph, Rejects33BitLocalSpace) {
  // n/p must fit in 32 bits; a fake spec with 1 GPU and >2^32 vertices must
  // be rejected.  (Constructed directly; allocating such a graph for real
  // would need >32 GB.)
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  GpuEdgeSets empty;
  EXPECT_THROW(LocalGraph(spec, sim::GpuCoord{0, 0}, (1ULL << 32) + 2, 0,
                          std::move(empty)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::graph
