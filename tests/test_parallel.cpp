#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dsbfs::util {
namespace {

TEST(Parallel, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ChunksPartitionTheRange) {
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(10, 100010, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100000u);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for_chunks(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SmallRangeRunsSerially) {
  // Under the serial cutoff the callback runs exactly once, inline.
  int calls = 0;
  parallel_for_chunks(0, 100, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, WorkerOverrideRespected) {
  set_parallel_worker_count(3);
  EXPECT_EQ(parallel_worker_count(), 3u);
  set_parallel_worker_count(0);
  EXPECT_GE(parallel_worker_count(), 1u);
}

TEST(Parallel, ResultIndependentOfWorkerCount) {
  constexpr std::size_t kN = 50000;
  auto run = [&](std::size_t workers) {
    set_parallel_worker_count(workers);
    std::vector<std::uint64_t> out(kN);
    parallel_for(0, kN, [&](std::size_t i) { out[i] = i * 3 + 1; });
    set_parallel_worker_count(0);
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

}  // namespace
}  // namespace dsbfs::util
