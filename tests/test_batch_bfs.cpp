#include "core/batch_bfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/serial_bfs.hpp"
#include "core/bfs.hpp"
#include "core/query_scheduler.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

/// Batched multi-source BFS: every lane must be bit-exact against the
/// serial single-source reference (depths and a valid per-lane BFS tree),
/// and the degenerate one-source batch must reproduce the single-source
/// engine run counter for counter.
namespace dsbfs::core {
namespace {

enum class GraphFamily { kRmat, kGrid };

struct BatchCase {
  std::string name;
  GraphFamily family;
  int ranks, gpus;
  std::uint32_t threshold;
  std::size_t batch;  // number of sources
  bool uniquify = false;
  bool compress = false;
};

graph::EdgeList make_graph(GraphFamily family) {
  switch (family) {
    case GraphFamily::kRmat:
      return graph::rmat_graph500({.scale = 10, .seed = 81});
    case GraphFamily::kGrid:
      return graph::grid_graph(32, 32);
  }
  return {};
}

std::vector<VertexId> pick_sources(const DistributedBatchBfs& bfs,
                                   std::size_t count) {
  std::vector<VertexId> sources;
  sources.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    sources.push_back(bfs.sample_source(k * 13 + 1));
  }
  return sources;
}

class BatchBfsProperty : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchBfsProperty, EveryLaneMatchesSerialWithValidParents) {
  const BatchCase c = GetParam();
  const graph::EdgeList g = make_graph(c.family);
  sim::ClusterSpec spec;
  spec.num_ranks = c.ranks;
  spec.gpus_per_rank = c.gpus;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, c.threshold);
  const graph::HostCsr csr = graph::build_host_csr(g);

  BatchBfsOptions options;
  options.uniquify = c.uniquify;
  options.compress = c.compress;
  options.compute_parents = true;
  DistributedBatchBfs bfs(dg, cluster, options);
  const std::vector<VertexId> sources = pick_sources(bfs, c.batch);

  const BatchBfsResult r = bfs.run(sources);
  EXPECT_EQ(r.lane_bits, util::lane_width_for(c.batch));
  ASSERT_EQ(r.distances.size(), sources.size());
  ASSERT_EQ(r.parents.size(), sources.size());

  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const auto expected = baseline::serial_bfs(csr, sources[lane]);
    const ValidationReport ref =
        validate_against_reference(r.distances[lane], expected);
    ASSERT_TRUE(ref.ok) << "lane " << lane << ": " << ref.error;

    const ValidationReport tree =
        validate_parents(g, sources[lane], r.distances[lane], r.parents[lane]);
    ASSERT_TRUE(tree.ok) << "lane " << lane << ": " << tree.error;
  }

  const RunMetrics& m = r.metrics;
  EXPECT_EQ(m.lane_bits, r.lane_bits);
  EXPECT_GT(m.iterations, 0);
  EXPECT_GT(m.edges_traversed, 0u);
}

std::vector<BatchCase> batch_cases() {
  std::vector<BatchCase> cases;
  // The lane-width ladder on both families: 1 (degenerate single-source),
  // 3 (partial byte lane), 32, 64.
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                  std::size_t{32}, std::size_t{64}}) {
    cases.push_back({"rmat_w" + std::to_string(batch), GraphFamily::kRmat, 2,
                     2, 16, batch});
    cases.push_back({"grid_w" + std::to_string(batch), GraphFamily::kGrid, 2,
                     2, 4, batch});
  }
  // Topology variants at full width.
  cases.push_back({"rmat_w64_4x1", GraphFamily::kRmat, 4, 1, 16, 64});
  cases.push_back({"rmat_w64_1x4", GraphFamily::kRmat, 1, 4, 16, 64});
  cases.push_back({"rmat_w64_3x2", GraphFamily::kRmat, 3, 2, 16, 64});
  // Exchange levers must stay bit-exact.
  cases.push_back({"rmat_w64_u", GraphFamily::kRmat, 2, 2, 16, 64, true,
                   false});
  cases.push_back({"rmat_w64_uc", GraphFamily::kRmat, 2, 2, 16, 64, true,
                   true});
  cases.push_back({"rmat_w64_c", GraphFamily::kRmat, 2, 2, 16, 64, false,
                   true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchBfsProperty,
                         ::testing::ValuesIn(batch_cases()),
                         [](const auto& info) { return info.param.name; });

/// Sum a per-GPU counter field over the whole run.
template <typename Fn>
std::uint64_t sum_counters(const sim::RunCounters& counters, Fn&& field) {
  std::uint64_t total = 0;
  for (const auto& ic : counters.iterations) {
    for (const auto& gc : ic.gpu) total += field(gc);
  }
  return total;
}

TEST(BatchBfsRegression, WidthOneReproducesSingleSourceCountersExactly) {
  // A one-source batch must be the forced-push DistributedBfs run bit for
  // bit: same iteration count, same wire bytes (the W = 1 lane record is
  // the id exchange's bare 4-byte id), same mask-reduce volume, same
  // traversal workload.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 82});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);

  BfsOptions single_options;
  single_options.direction_optimized = false;  // the batch is push-only
  DistributedBfs single(dg, cluster, single_options);
  DistributedBatchBfs batch(dg, cluster, {});

  const VertexId source = single.sample_source(1);
  const BfsResult sr = single.run(source);
  const std::vector<VertexId> sources{source};
  const BatchBfsResult br = batch.run(sources);

  EXPECT_EQ(br.lane_bits, 1);
  ASSERT_EQ(br.distances.size(), 1u);
  EXPECT_EQ(br.distances[0], sr.distances);

  const RunMetrics& sm = sr.metrics;
  const RunMetrics& bm = br.metrics;
  EXPECT_EQ(bm.iterations, sm.iterations);
  EXPECT_EQ(bm.delegate_reduce_iterations, sm.delegate_reduce_iterations);
  EXPECT_EQ(bm.edges_traversed, sm.edges_traversed);
  EXPECT_EQ(bm.exchange_remote_bytes, sm.exchange_remote_bytes);
  EXPECT_EQ(bm.exchange_local_bytes, sm.exchange_local_bytes);
  EXPECT_EQ(bm.mask_reduce_bytes, sm.mask_reduce_bytes);
  EXPECT_EQ(bm.counters.delegate_mask_bytes, sm.counters.delegate_mask_bytes);
  EXPECT_EQ(sum_counters(bm.counters,
                         [](const auto& c) { return c.recv_bytes_remote; }),
            sum_counters(sm.counters,
                         [](const auto& c) { return c.recv_bytes_remote; }));
  EXPECT_EQ(sum_counters(bm.counters,
                         [](const auto& c) { return c.bin_vertices; }),
            sum_counters(sm.counters,
                         [](const auto& c) { return c.bin_vertices; }));
}

TEST(BatchBfs, LaneOccupancyCountersAndScaledMaskBytes) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 83});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);
  DistributedBatchBfs bfs(dg, cluster, {});
  const std::vector<VertexId> sources = pick_sources(bfs, 64);
  const BatchBfsResult r = bfs.run(sources);

  EXPECT_EQ(r.lane_bits, 64);
  // The mask reduction moves d * 64 / 8 bytes per round.
  EXPECT_EQ(r.metrics.counters.delegate_mask_bytes,
            static_cast<std::uint64_t>(dg.num_delegates()) * 8);
  // Lane occupancy flows through the per-iteration trace: the shared
  // sweeps advanced more lane bits than frontier vertices in the dense
  // rounds (that is the amortization).
  std::uint64_t frontier_vertices = 0, frontier_bits = 0, delegate_bits = 0;
  for (const IterationStats& it : r.metrics.per_iteration) {
    frontier_vertices += it.frontier_normals;
    frontier_bits += it.frontier_lane_bits;
    delegate_bits += it.new_delegate_lane_bits;
  }
  EXPECT_GT(frontier_bits, frontier_vertices);
  EXPECT_GT(delegate_bits, 0u);
}

TEST(BatchBfs, DuplicateSourcesProduceIdenticalLanes) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 84});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);
  DistributedBatchBfs bfs(dg, cluster, {});
  const VertexId s = bfs.sample_source(5);
  const std::vector<VertexId> sources{s, s, s};
  const BatchBfsResult r = bfs.run(sources);
  ASSERT_EQ(r.distances.size(), 3u);
  EXPECT_EQ(r.distances[0], r.distances[1]);
  EXPECT_EQ(r.distances[0], r.distances[2]);
}

TEST(BatchBfs, UniquifyCutsWireBytesAndStaysBitExact) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 85});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);

  std::uint64_t bytes_on = 0, bytes_off = 0;
  std::vector<std::vector<Depth>> dist_on, dist_off;
  for (const bool uniquify : {false, true}) {
    BatchBfsOptions options;
    options.uniquify = uniquify;
    DistributedBatchBfs bfs(dg, cluster, options);
    const std::vector<VertexId> sources = pick_sources(bfs, 64);
    const BatchBfsResult r = bfs.run(sources);
    (uniquify ? bytes_on : bytes_off) = r.metrics.exchange_remote_bytes;
    (uniquify ? dist_on : dist_off) = r.distances;
  }
  EXPECT_EQ(dist_on, dist_off);
  // Dense RMAT rounds bin several updates per destination vertex; the OR
  // coalesce must strictly shrink the wire volume.
  EXPECT_LT(bytes_on, bytes_off);
}

TEST(BatchBfs, RejectsBadBatches) {
  const graph::EdgeList g = graph::path_graph(8);
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 4);
  DistributedBatchBfs bfs(dg, cluster, {});
  EXPECT_THROW(bfs.run(std::vector<VertexId>{}), std::invalid_argument);
  EXPECT_THROW(bfs.run(std::vector<VertexId>(65, 0)), std::invalid_argument);
  EXPECT_THROW(bfs.run(std::vector<VertexId>{999}), std::out_of_range);
}

// ---- mid-flight lane-reseed edge cases (the serving scheduler re-admits
// queries into lanes the batched substrate just drained) -------------------

void expect_all_queries_serial_exact(const graph::EdgeList& g,
                                     const SchedulerOutcome& out) {
  const graph::HostCsr csr = graph::build_host_csr(g);
  for (std::size_t i = 0; i < out.queries.size(); ++i) {
    const ServedQuery& q = out.queries[i];
    const ValidationReport ref = validate_against_reference(
        q.distances, baseline::serial_bfs(csr, q.source));
    ASSERT_TRUE(ref.ok) << "query " << i << " (source " << q.source
                        << "): " << ref.error;
  }
}

TEST(BatchBfs, ReseedingAFullyCoveredLaneStaysExact) {
  // The grid is connected: each query visits *every* vertex, so every
  // successive occupant of the single lane re-seeds a lane whose visited
  // columns were fully set.  A missed clear anywhere shows up as a wrong
  // (stale, smaller) depth.
  const graph::EdgeList g = graph::grid_graph(16, 16);
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 4);
  QueryScheduler scheduler(dg, cluster, {.width = 1});
  std::vector<QueryArrival> trace;
  for (std::uint64_t k = 0; k < 3; ++k) {
    trace.push_back({scheduler.sample_source(k * 7 + 1), 0});
  }
  const SchedulerOutcome out = scheduler.run(trace);
  ASSERT_EQ(out.queries.size(), 3u);
  for (const ServedQuery& q : out.queries) {
    EXPECT_EQ(q.lane, 0);  // one lane serves the whole trace
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(q.distances.begin(), q.distances.end(),
                             kUnvisited)),
              0u);
  }
  expect_all_queries_serial_exact(g, out);
}

TEST(BatchBfs, DuplicateSourcesAcrossSuccessiveLaneOccupantsAgree) {
  // The same source served three times through the same recycled lane must
  // answer identically each time (and match the serial reference): the
  // reseed may not leak the previous occupant's identical-looking state.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 86});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);
  QueryScheduler scheduler(dg, cluster, {.width = 1});
  const VertexId s = scheduler.sample_source(5);
  const std::vector<QueryArrival> trace{{s, 0}, {s, 0}, {s, 0}};
  const SchedulerOutcome out = scheduler.run(trace);
  ASSERT_EQ(out.queries.size(), 3u);
  EXPECT_EQ(out.queries[0].distances, out.queries[1].distances);
  EXPECT_EQ(out.queries[0].distances, out.queries[2].distances);
  // Identical traversal shape each time (the modeled ms may differ: the
  // recycled occupants' first iteration carries the reseed charge).
  EXPECT_EQ(out.queries[0].retire_iteration - out.queries[0].admit_iteration,
            out.queries[1].retire_iteration - out.queries[1].admit_iteration);
  EXPECT_EQ(out.queries[0].retire_iteration - out.queries[0].admit_iteration,
            out.queries[2].retire_iteration - out.queries[2].admit_iteration);
  expect_all_queries_serial_exact(g, out);
}

TEST(BatchBfs, WidthQuantizationBoundariesServeExactly) {
  // util::lane_width_for quantizes the lane budget to storage widths at
  // 1 -> 8 and 32 -> 64; the scheduler must stay exact right across both
  // boundaries (unused storage lanes never leak into served ones).
  EXPECT_EQ(util::lane_width_for(1), 1);
  EXPECT_EQ(util::lane_width_for(2), 8);
  EXPECT_EQ(util::lane_width_for(32), 32);
  EXPECT_EQ(util::lane_width_for(33), 64);

  const graph::EdgeList g = graph::rmat_graph500({.scale = 9, .seed = 87});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 16);
  for (const std::size_t width : {std::size_t{2}, std::size_t{33}}) {
    QueryScheduler scheduler(dg, cluster, {.width = width});
    const std::vector<QueryArrival> trace = make_arrival_trace(
        dg, {.queries = width + 3, .rate = 8.0,
             .pattern = ArrivalPattern::kUniform, .seed = 43});
    const SchedulerOutcome out = scheduler.run(trace);
    EXPECT_EQ(out.lane_bits, util::lane_width_for(width));
    // The budget is the requested width, not the quantized storage width.
    for (const ServedQuery& q : out.queries) {
      EXPECT_LT(static_cast<std::size_t>(q.lane), width);
    }
    expect_all_queries_serial_exact(g, out);
  }
}

}  // namespace
}  // namespace dsbfs::core
