#include "graph/degree.hpp"

#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"

namespace dsbfs::graph {
namespace {

TEST(Delegates, ThresholdIsStrict) {
  // "vertices with out-degree larger than TH" -- degree == TH stays normal.
  const std::vector<std::uint32_t> degrees{0, 5, 6, 7};
  const DelegateInfo info = DelegateInfo::select(degrees, 6);
  EXPECT_EQ(info.count(), 1u);
  EXPECT_EQ(info.vertex_of(0), 3u);
  EXPECT_FALSE(info.is_delegate(2));
  EXPECT_TRUE(info.is_delegate(3));
}

TEST(Delegates, IdsAscendByVertexId) {
  // Paper Fig. 2: vertex 7 -> delegate 0, vertex 8 -> delegate 1.
  const std::vector<std::uint32_t> degrees{1, 9, 1, 9, 9};
  const DelegateInfo info = DelegateInfo::select(degrees, 5);
  ASSERT_EQ(info.count(), 3u);
  EXPECT_EQ(info.vertex_of(0), 1u);
  EXPECT_EQ(info.vertex_of(1), 3u);
  EXPECT_EQ(info.vertex_of(2), 4u);
  EXPECT_EQ(info.delegate_id(1), 0u);
  EXPECT_EQ(info.delegate_id(3), 1u);
  EXPECT_EQ(info.delegate_id(4), 2u);
}

TEST(Delegates, LookupMissReturnsInvalid) {
  const std::vector<std::uint32_t> degrees{1, 9, 1};
  const DelegateInfo info = DelegateInfo::select(degrees, 5);
  EXPECT_EQ(info.delegate_id(0), kInvalidLocal);
  EXPECT_EQ(info.delegate_id(2), kInvalidLocal);
  EXPECT_FALSE(info.is_delegate(0));
}

TEST(Delegates, EmptyWhenThresholdHigh) {
  const std::vector<std::uint32_t> degrees{3, 4, 5};
  const DelegateInfo info = DelegateInfo::select(degrees, 100);
  EXPECT_EQ(info.count(), 0u);
}

TEST(Delegates, AllWhenThresholdZeroAndDegreesPositive) {
  const std::vector<std::uint32_t> degrees{1, 2, 3};
  const DelegateInfo info = DelegateInfo::select(degrees, 0);
  EXPECT_EQ(info.count(), 3u);
}

TEST(Delegates, StarGraphCenterOnly) {
  const EdgeList g = star_graph(64);
  const auto degrees = out_degrees(g);
  const DelegateInfo info = DelegateInfo::select(degrees, 8);
  ASSERT_EQ(info.count(), 1u);
  EXPECT_EQ(info.vertex_of(0), 0u);
}

TEST(Delegates, CountDecreasesWithThreshold) {
  const EdgeList g = erdos_renyi(1 << 12, 1 << 15, 7);
  const auto degrees = out_degrees(make_symmetric(g));
  std::size_t prev = degrees.size() + 1;
  for (const std::uint32_t th : {0u, 4u, 8u, 16u, 32u, 64u}) {
    const std::size_t count = DelegateInfo::select(degrees, th).count();
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST(Delegates, PaperFigure2WorkedExample) {
  // The example graph of Fig. 2: 11 vertices (0..10); vertices 7 and 8 have
  // out-degree > 5 and become delegates 0 and 1.
  EdgeList g;
  g.num_vertices = 11;
  // Vertex 7 neighbors: 0,1,2,3,4,5 (degree 6); vertex 8: 4,5,6,9,10,3 (6).
  for (const VertexId v : {0, 1, 2, 3, 4, 5}) g.add(7, v);
  for (const VertexId v : {4, 5, 6, 9, 10, 3}) g.add(8, v);
  g.add(0, 1);
  const EdgeList s = make_symmetric(g);
  const auto degrees = out_degrees(s);
  const DelegateInfo info = DelegateInfo::select(degrees, 5);
  ASSERT_EQ(info.count(), 2u);
  EXPECT_EQ(info.delegate_id(7), 0u);
  EXPECT_EQ(info.delegate_id(8), 1u);
}

}  // namespace
}  // namespace dsbfs::graph
