#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace dsbfs::sim {
namespace {

TEST(ClusterSpec, ParseAndToString) {
  const ClusterSpec s = ClusterSpec::parse("16x2x2");
  EXPECT_EQ(s.num_ranks, 32);
  EXPECT_EQ(s.gpus_per_rank, 2);
  EXPECT_EQ(s.ranks_per_node, 2);
  EXPECT_EQ(s.total_gpus(), 64);
  EXPECT_EQ(s.num_nodes(), 16);
  EXPECT_EQ(s.to_string(), "16x2x2");
}

TEST(ClusterSpec, ParseRejectsGarbage) {
  EXPECT_THROW(ClusterSpec::parse("4x2"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::parse("hello"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::parse("0x1x1"), std::invalid_argument);
}

TEST(ClusterSpec, GlobalGpuRoundTrip) {
  ClusterSpec s;
  s.num_ranks = 6;
  s.gpus_per_rank = 4;
  for (int g = 0; g < s.total_gpus(); ++g) {
    const GpuCoord c = s.coord_of(g);
    EXPECT_EQ(s.global_gpu(c), g);
    EXPECT_GE(c.rank, 0);
    EXPECT_LT(c.rank, 6);
    EXPECT_GE(c.gpu, 0);
    EXPECT_LT(c.gpu, 4);
  }
}

TEST(ClusterSpec, OwnershipFollowsAlgorithm1Formulas) {
  // P(v) = v mod prank, G(v) = (v / prank) mod pgpu.
  ClusterSpec s;
  s.num_ranks = 3;
  s.gpus_per_rank = 2;
  for (std::uint64_t v = 0; v < 100; ++v) {
    EXPECT_EQ(s.owner_rank(v), static_cast<int>(v % 3));
    EXPECT_EQ(s.owner_gpu(v), static_cast<int>((v / 3) % 2));
    EXPECT_EQ(s.owner_global_gpu(v),
              s.owner_rank(v) * s.gpus_per_rank + s.owner_gpu(v));
  }
}

TEST(ClusterSpec, LocalIndexRoundTrip) {
  ClusterSpec s;
  s.num_ranks = 3;
  s.gpus_per_rank = 2;
  for (std::uint64_t v = 0; v < 200; ++v) {
    const int rank = s.owner_rank(v);
    const int gpu = s.owner_gpu(v);
    const std::uint64_t local = s.local_index(v);
    EXPECT_EQ(s.global_vertex(rank, gpu, local), v);
    EXPECT_LT(local, (200 + 5) / static_cast<std::uint64_t>(s.total_gpus()) + 1);
  }
}

TEST(ClusterSpec, OwnershipBalanced) {
  ClusterSpec s;
  s.num_ranks = 4;
  s.gpus_per_rank = 2;
  std::vector<int> counts(static_cast<std::size_t>(s.total_gpus()), 0);
  for (std::uint64_t v = 0; v < 8000; ++v) {
    ++counts[static_cast<std::size_t>(s.owner_global_gpu(v))];
  }
  for (const int c : counts) EXPECT_EQ(c, 1000);
}

TEST(ClusterSpec, NodeHelpersPartitionRanksAndGpus) {
  // 2 ranks per node, 2 GPUs per rank: node k owns ranks {2k, 2k+1} and the
  // four consecutive global GPUs starting at its leader.
  ClusterSpec s;
  s.num_ranks = 4;
  s.gpus_per_rank = 2;
  s.ranks_per_node = 2;
  EXPECT_EQ(s.num_nodes(), 2);
  for (int r = 0; r < s.num_ranks; ++r) EXPECT_EQ(s.node_of_rank(r), r / 2);
  for (int g = 0; g < s.total_gpus(); ++g) EXPECT_EQ(s.node_of(g), g / 4);
  EXPECT_EQ(s.node_leader(0), 0);
  EXPECT_EQ(s.node_leader(1), 4);
  EXPECT_EQ(s.gpus_per_node(0), 4);
  EXPECT_EQ(s.gpus_per_node(1), 4);
}

TEST(ClusterSpec, NodeHelpersHandlePartialLastNode) {
  // 3 ranks at 2 ranks per node: the second node holds only rank 2.
  ClusterSpec s;
  s.num_ranks = 3;
  s.gpus_per_rank = 2;
  s.ranks_per_node = 2;
  EXPECT_EQ(s.num_nodes(), 2);
  EXPECT_EQ(s.node_of_rank(2), 1);
  EXPECT_EQ(s.node_leader(1), 4);
  EXPECT_EQ(s.gpus_per_node(0), 4);
  EXPECT_EQ(s.gpus_per_node(1), 2);
}

TEST(ClusterSpec, SingleNodeClusterIsOneNvlinkDomain) {
  ClusterSpec s;
  s.num_ranks = 4;
  s.gpus_per_rank = 2;
  s.ranks_per_node = 4;
  EXPECT_EQ(s.num_nodes(), 1);
  for (int g = 0; g < s.total_gpus(); ++g) EXPECT_EQ(s.node_of(g), 0);
  EXPECT_EQ(s.node_leader(0), 0);
  EXPECT_EQ(s.gpus_per_node(0), s.total_gpus());
}

TEST(Cluster, RunsBodyOncePerGpuConcurrently) {
  ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 3;
  Cluster cluster(spec);
  std::atomic<int> count{0};
  std::mutex mu;
  std::set<int> seen;
  cluster.run([&](GpuCoord me, Device& dev) {
    count.fetch_add(1);
    std::lock_guard lock(mu);
    seen.insert(spec.global_gpu(me));
    EXPECT_EQ(dev.id(), spec.global_gpu(me));
  });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Cluster, PropagatesExceptions) {
  Cluster cluster(ClusterSpec{2, 1, 1});
  EXPECT_THROW(cluster.run([](GpuCoord me, Device&) {
                 if (me.rank == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
}

TEST(Cluster, DevicesAreDistinct) {
  Cluster cluster(ClusterSpec{2, 2, 1});
  cluster.device(0).allocate("x", 10);
  EXPECT_EQ(cluster.device(0).allocated_bytes(), 10u);
  EXPECT_EQ(cluster.device(1).allocated_bytes(), 0u);
  EXPECT_EQ(cluster.device(3).id(), 3);
}

TEST(Cluster, GpusCanSynchronizeViaSharedState) {
  // The BFS driver relies on all GPU threads genuinely running concurrently
  // (collectives would deadlock otherwise); verify no serialization.
  ClusterSpec spec{4, 1, 1};
  Cluster cluster(spec);
  std::atomic<int> arrived{0};
  cluster.run([&](GpuCoord, Device&) {
    arrived.fetch_add(1);
    // Busy-wait until every thread arrives; would hang if Cluster::run
    // executed bodies sequentially.
    while (arrived.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 4);
}

}  // namespace
}  // namespace dsbfs::sim
