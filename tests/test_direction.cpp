#include "core/direction.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsbfs::core {
namespace {

TEST(BackwardWorkload, MatchesPaperFormula) {
  // BV = |U| (q + s) / q.
  EXPECT_DOUBLE_EQ(backward_workload(100, 10, 90), 100.0 * (10 + 90) / 10);
  EXPECT_DOUBLE_EQ(backward_workload(1, 1, 0), 1.0);
}

TEST(BackwardWorkload, EmptyFrontierIsInfinite) {
  EXPECT_TRUE(std::isinf(backward_workload(100, 0, 50)));
}

TEST(BackwardWorkload, ShrinksAsFrontierGrows) {
  // More newly visited parents -> higher hit probability -> cheaper pull.
  const double small_frontier = backward_workload(1000, 10, 990);
  const double large_frontier = backward_workload(1000, 900, 100);
  EXPECT_GT(small_frontier, large_frontier);
}

TEST(DirectionState, StartsForward) {
  DirectionState s(DirectionFactors{0.5, 0.05});
  EXPECT_FALSE(s.backward());
}

TEST(DirectionState, SwitchesToBackwardWhenForwardCostly) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  // FV > 0.5 * BV -> switch.
  EXPECT_TRUE(s.update(/*fv=*/100.0, /*bv=*/100.0, true));
  EXPECT_TRUE(s.backward());
}

TEST(DirectionState, StaysForwardWhenCheap) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  EXPECT_FALSE(s.update(10.0, 100.0, true));
}

TEST(DirectionState, SwitchesBackWithPositiveFactor1) {
  DirectionState s(DirectionFactors{0.5, 0.05});
  s.update(100.0, 100.0, true);  // -> backward
  ASSERT_TRUE(s.backward());
  // FV < 0.05 * BV -> back to forward.
  EXPECT_FALSE(s.update(1.0, 1000.0, true));
}

TEST(DirectionState, NeverSwitchesBackWithZeroFactor1) {
  // The paper's RMAT setting: once backward, stay backward.
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(100.0, 100.0, true);
  EXPECT_TRUE(s.update(0.0, 1e9, true));
  EXPECT_TRUE(s.backward());
}

TEST(DirectionState, TinyFactorSwitchesAlmostImmediately) {
  // The nd subgraph's 1e-7 factor: any nonzero forward workload triggers
  // the pull direction once BV is finite.
  DirectionState s(DirectionFactors{1e-7, 0.0});
  EXPECT_TRUE(s.update(1.0, 1000.0, true));
}

TEST(DirectionState, DisabledDoForcesForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(100.0, 1.0, true);  // would switch
  ASSERT_TRUE(s.backward());
  // With DO disabled the kernel must run forward regardless of state.
  EXPECT_FALSE(s.update(1e9, 1.0, false));
  EXPECT_FALSE(s.backward());
}

TEST(DirectionState, InfiniteBvKeepsForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  EXPECT_FALSE(s.update(1e12, backward_workload(10, 0, 10), true));
}

TEST(DirectionState, ResetRestoresForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(10.0, 1.0, true);
  ASSERT_TRUE(s.backward());
  s.reset();
  EXPECT_FALSE(s.backward());
}

}  // namespace
}  // namespace dsbfs::core
