#include "core/direction.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsbfs::core {
namespace {

TEST(BackwardWorkload, MatchesPaperFormula) {
  // BV = |U| (q + s) / q.
  EXPECT_DOUBLE_EQ(backward_workload(100, 10, 90), 100.0 * (10 + 90) / 10);
  EXPECT_DOUBLE_EQ(backward_workload(1, 1, 0), 1.0);
}

TEST(BackwardWorkload, EmptyFrontierIsInfinite) {
  EXPECT_TRUE(std::isinf(backward_workload(100, 0, 50)));
}

TEST(BackwardWorkload, ShrinksAsFrontierGrows) {
  // More newly visited parents -> higher hit probability -> cheaper pull.
  const double small_frontier = backward_workload(1000, 10, 990);
  const double large_frontier = backward_workload(1000, 900, 100);
  EXPECT_GT(small_frontier, large_frontier);
}

TEST(DirectionState, StartsForward) {
  DirectionState s(DirectionFactors{0.5, 0.05});
  EXPECT_FALSE(s.backward());
}

TEST(DirectionState, SwitchesToBackwardWhenForwardCostly) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  // FV > 0.5 * BV -> switch.
  EXPECT_TRUE(s.update(/*fv=*/100.0, /*bv=*/100.0, true));
  EXPECT_TRUE(s.backward());
}

TEST(DirectionState, StaysForwardWhenCheap) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  EXPECT_FALSE(s.update(10.0, 100.0, true));
}

TEST(DirectionState, SwitchesBackWithPositiveFactor1) {
  DirectionState s(DirectionFactors{0.5, 0.05});
  s.update(100.0, 100.0, true);  // -> backward
  ASSERT_TRUE(s.backward());
  // FV < 0.05 * BV -> back to forward.
  EXPECT_FALSE(s.update(1.0, 1000.0, true));
}

TEST(DirectionState, NeverSwitchesBackWithZeroFactor1) {
  // The paper's RMAT setting: once backward, stay backward.
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(100.0, 100.0, true);
  EXPECT_TRUE(s.update(0.0, 1e9, true));
  EXPECT_TRUE(s.backward());
}

TEST(DirectionState, TinyFactorSwitchesAlmostImmediately) {
  // The nd subgraph's 1e-7 factor: any nonzero forward workload triggers
  // the pull direction once BV is finite.
  DirectionState s(DirectionFactors{1e-7, 0.0});
  EXPECT_TRUE(s.update(1.0, 1000.0, true));
}

TEST(DirectionState, DisabledDoForcesForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(100.0, 1.0, true);  // would switch
  ASSERT_TRUE(s.backward());
  // With DO disabled the kernel must run forward regardless of state.
  EXPECT_FALSE(s.update(1e9, 1.0, false));
  EXPECT_FALSE(s.backward());
}

TEST(DirectionState, InfiniteBvKeepsForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  EXPECT_FALSE(s.update(1e12, backward_workload(10, 0, 10), true));
}

TEST(DirectionState, ResetRestoresForward) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(10.0, 1.0, true);
  ASSERT_TRUE(s.backward());
  s.reset();
  EXPECT_FALSE(s.backward());
}

TEST(DirectionState, SetFactorsKeepsPosition) {
  DirectionState s(DirectionFactors{0.5, 0.0});
  s.update(100.0, 100.0, true);
  ASSERT_TRUE(s.backward());
  // Re-installing factors (what the controller does each previsit) must not
  // reset the hysteresis position.
  s.set_factors(DirectionFactors{0.5, 0.05});
  EXPECT_TRUE(s.backward());
  EXPECT_FALSE(s.update(1.0, 1000.0, true));  // new to_forward in effect
}

// ---- lane-aware backward workload (batched union-frontier pulls) ---------

TEST(LaneBackwardWorkload, OneLiveLaneIsExactlyScalar) {
  // H_1 = 1: the W = 1 hybrid batch must reproduce single-source estimates
  // bit for bit.
  EXPECT_EQ(lane_backward_workload(100, 10, 90, 1),
            backward_workload(100, 10, 90));
  EXPECT_EQ(lane_backward_workload(1, 1, 0, 1), backward_workload(1, 1, 0));
}

TEST(LaneBackwardWorkload, AllLanesLiveScalesByHarmonic) {
  double h64 = 0;
  for (int i = 1; i <= 64; ++i) h64 += 1.0 / i;
  EXPECT_DOUBLE_EQ(lane_backward_workload(100, 10, 90, 64),
                   h64 * backward_workload(100, 10, 90));
  // The expected max of 64 early-exit scans is well under 64 full scans.
  EXPECT_LT(lane_backward_workload(100, 10, 90, 64),
            64.0 * backward_workload(100, 10, 90));
}

TEST(LaneBackwardWorkload, EmptyUnionFrontierIsInfinite) {
  EXPECT_TRUE(std::isinf(lane_backward_workload(100, 0, 50, 8)));  // q = 0
  EXPECT_TRUE(std::isinf(lane_backward_workload(100, 10, 50, 0)));  // no lanes
}

TEST(LaneBackwardWorkload, GrowsWithLiveLanes) {
  const double one = lane_backward_workload(1000, 10, 990, 1);
  const double some = lane_backward_workload(1000, 10, 990, 8);
  const double all = lane_backward_workload(1000, 10, 990, 64);
  EXPECT_LT(one, some);
  EXPECT_LT(some, all);
}

// ---- online direction controller -----------------------------------------

sim::GpuIterationCounters iteration_with(std::uint64_t pull_edges,
                                         std::uint64_t pull_vertices,
                                         std::uint64_t push_edges,
                                         std::uint64_t push_vertices) {
  sim::GpuIterationCounters c;
  if (pull_edges > 0) {
    c.dd.launched = true;
    c.dd.backward = true;
    c.dd.edges = pull_edges;
    c.dd.vertices = pull_vertices;
  }
  if (push_edges > 0) {
    c.nn.launched = true;
    c.nn.edges = push_edges;
    c.nn.vertices = push_vertices;
  }
  return c;
}

TEST(DirectionController, PriorReproducesSeedExactly) {
  // Until observations rival the prior edge mass, the multiplier must be
  // 1.0 bit for bit ((a/b) / (a/b) in IEEE), so adaptive-on changes nothing
  // at smoke scales.
  const DirectionController ctl;
  const DirectionFactors seed{0.5, 0.05};
  const DirectionFactors merge = ctl.factors(seed, /*merge_based=*/true);
  const DirectionFactors dyn = ctl.factors(seed, /*merge_based=*/false);
  EXPECT_EQ(merge.to_backward, seed.to_backward);
  EXPECT_EQ(merge.to_forward, seed.to_forward);
  EXPECT_EQ(dyn.to_backward, seed.to_backward);
  EXPECT_EQ(dyn.to_forward, seed.to_forward);
}

TEST(DirectionController, LaunchDominatedPullsRaiseTheSwitchThreshold) {
  // Tiny pull rounds pay the fixed launch overhead over few edges: the
  // realized pull cost per edge far exceeds the asymptotic rate, so the
  // controller must back off switching (larger to_backward) -- the paper's
  // Section VI-D long-tail failure mode, handled online.
  DirectionController ctl;
  for (int i = 0; i < 20000; ++i) {
    ctl.observe(iteration_with(/*pull_edges=*/1000, /*pull_vertices=*/500,
                               /*push_edges=*/1000, /*push_vertices=*/500));
  }
  const DirectionFactors seed{0.5, 0.05};
  const DirectionFactors adapted = ctl.factors(seed, /*merge_based=*/true);
  EXPECT_GT(adapted.to_backward, seed.to_backward);
  // Hysteresis width (the threshold ratio) is preserved.
  EXPECT_DOUBLE_EQ(adapted.to_forward / adapted.to_backward,
                   seed.to_forward / seed.to_backward);
  EXPECT_GT(ctl.estimated_pull_ns_per_edge(),
            sim::DeviceModelConfig{}.ns_per_edge_backward);
}

TEST(DirectionController, IdenticalObservationsGiveIdenticalFactors) {
  // Every controller input is a deterministic counter; two controllers fed
  // the same sequence must agree bit for bit (run-to-run reproducibility of
  // the direction decisions rests on this).
  DirectionController a, b;
  for (int i = 0; i < 100; ++i) {
    const auto c = iteration_with(1000 + static_cast<std::uint64_t>(i) * 17,
                                  40 + static_cast<std::uint64_t>(i),
                                  5000 + static_cast<std::uint64_t>(i) * 31,
                                  200 + static_cast<std::uint64_t>(i));
    a.observe(c);
    b.observe(c);
  }
  const DirectionFactors seed{0.5, 0.05};
  const DirectionFactors fa = a.factors(seed, false);
  const DirectionFactors fb = b.factors(seed, false);
  EXPECT_EQ(fa.to_backward, fb.to_backward);
  EXPECT_EQ(fa.to_forward, fb.to_forward);
  EXPECT_EQ(a.estimated_push_ns_per_edge(false),
            b.estimated_push_ns_per_edge(false));
  EXPECT_EQ(a.estimated_pull_ns_per_edge(), b.estimated_pull_ns_per_edge());
}

}  // namespace
}  // namespace dsbfs::core
