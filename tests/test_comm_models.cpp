#include "baseline/comm_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dsbfs::baseline {
namespace {

CommModelInput weak_scaled(int p) {
  // Weak scaling: scale-26-per-GPU RMAT equivalents, one GPU per rank.
  CommModelInput in;
  in.p = p;
  in.p_rank = p;
  in.n = (1ULL << 26) * static_cast<std::uint64_t>(p);
  in.m = in.n * 32;
  in.nt = in.n / 64;       // forward-visited vertices
  in.s_total = 12;
  in.s_backward = 8;
  in.s_delegate = 6;
  in.d = 4 * (in.n / static_cast<std::uint64_t>(p));  // d <= 4n/p
  in.enn = in.m / 16;                                 // ~6% nn edges
  return in;
}

TEST(CommModels, OneDVolumeIsEightM) {
  CommModelInput in = weak_scaled(4);
  const CommModelOutput out = comm_model_1d(in);
  EXPECT_DOUBLE_EQ(out.volume_bytes, 8.0 * static_cast<double>(in.m));
  EXPECT_DOUBLE_EQ(out.time_us, 8.0 * static_cast<double>(in.m) / 4.0 *
                                    in.g_us_per_byte);
}

TEST(CommModels, TwoDFormulaHandComputed) {
  CommModelInput in;
  in.p = 16;  // sqrt(p) = 4, log2 = 2
  in.nt = 1000;
  in.n = 100000;
  in.s_backward = 5;
  in.g_us_per_byte = 1.0;
  const CommModelOutput out = comm_model_2d(in);
  EXPECT_DOUBLE_EQ(out.volume_bytes,
                   8.0 * 1000 * 4 * 2 + 2.0 * 100000 * 5 * 4 * 2 / 8.0);
  EXPECT_DOUBLE_EQ(out.time_us, (4.0 * 1000 + 100000 * 5 / 8.0) * (2.0 / 4.0));
}

TEST(CommModels, DelegatesFormulaHandComputed) {
  CommModelInput in;
  in.p = 8;
  in.p_rank = 4;  // log2 = 2
  in.d = 1024;
  in.s_delegate = 3;
  in.enn = 5000;
  in.g_us_per_byte = 1.0;
  const CommModelOutput out = comm_model_delegates(in);
  EXPECT_DOUBLE_EQ(out.volume_bytes, 1024.0 * 4 / 4 * 3 + 4.0 * 5000);
  EXPECT_DOUBLE_EQ(out.time_us, 1024.0 * 2 / 4 * 3 + 4.0 * 5000 / 8);
}

TEST(CommModels, WeakScalingGrowthRates) {
  // The paper's core scalability claim: under weak scaling the 2D model's
  // per-processor communication time grows ~sqrt(p), while the delegate
  // model grows ~log(p_rank).
  const double t2d_4 = comm_model_2d(weak_scaled(4)).time_us;
  const double t2d_64 = comm_model_2d(weak_scaled(64)).time_us;
  const double tdel_4 = comm_model_delegates(weak_scaled(4)).time_us;
  const double tdel_64 = comm_model_delegates(weak_scaled(64)).time_us;

  const double growth_2d = t2d_64 / t2d_4;
  const double growth_del = tdel_64 / tdel_4;
  EXPECT_GT(growth_2d, 3.0);   // ~sqrt(16) with log factors
  EXPECT_LT(growth_del, 3.0);  // logarithmic
  EXPECT_GT(growth_2d, 1.5 * growth_del);
}

TEST(CommModels, DelegatesBeatOneDAtScale) {
  const CommModelInput in = weak_scaled(64);
  EXPECT_LT(comm_model_delegates(in).volume_bytes,
            comm_model_1d(in).volume_bytes);
}

TEST(CommModels, SingleProcessorDegenerates) {
  CommModelInput in = weak_scaled(1);
  in.p_rank = 1;
  const CommModelOutput del = comm_model_delegates(in);
  // log(1) = 0: only the nn term remains.
  EXPECT_DOUBLE_EQ(del.time_us,
                   4.0 * static_cast<double>(in.enn) * in.g_us_per_byte);
}

}  // namespace
}  // namespace dsbfs::baseline
