#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "baseline/serial_bfs.hpp"
#include "core/batch_bfs.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/rmat.hpp"

/// Direction-optimized batched BFS: union-frontier bottom-up rounds must
/// keep every lane bit-exact against the serial reference, the W = 1 hybrid
/// batch must reproduce the single-source hybrid run's direction decisions
/// and traffic exactly, and the online direction controller must be
/// deterministic run to run.
namespace dsbfs::core {
namespace {

struct GraphSetup {
  graph::EdgeList edges;
  sim::ClusterSpec spec;
};

GraphSetup rmat_setup(int scale, std::uint64_t seed, int ranks, int gpus) {
  GraphSetup s;
  s.edges = graph::rmat_graph500({.scale = scale, .seed = seed});
  s.spec.num_ranks = ranks;
  s.spec.gpus_per_rank = gpus;
  return s;
}

std::vector<VertexId> pick_sources(const DistributedBatchBfs& bfs,
                                   std::size_t count) {
  std::vector<VertexId> sources;
  sources.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    sources.push_back(bfs.sample_source(k * 13 + 1));
  }
  return sources;
}

class HybridBatchBfs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HybridBatchBfs, EveryLaneBitExactWithValidParents) {
  const std::size_t batch = GetParam();
  const GraphSetup setup = rmat_setup(10, 91, 2, 2);
  sim::Cluster cluster(setup.spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(setup.edges, setup.spec, 16);
  const graph::HostCsr csr = graph::build_host_csr(setup.edges);

  BatchBfsOptions options;
  options.direction = TraversalDirection::kHybrid;
  options.compute_parents = true;
  DistributedBatchBfs bfs(dg, cluster, options);
  const std::vector<VertexId> sources = pick_sources(bfs, batch);
  const BatchBfsResult r = bfs.run(sources);

  ASSERT_EQ(r.distances.size(), sources.size());
  for (std::size_t lane = 0; lane < sources.size(); ++lane) {
    const auto expected = baseline::serial_bfs(csr, sources[lane]);
    const ValidationReport ref =
        validate_against_reference(r.distances[lane], expected);
    ASSERT_TRUE(ref.ok) << "lane " << lane << ": " << ref.error;
    const ValidationReport tree =
        validate_parents(setup.edges, sources[lane], r.distances[lane],
                         r.parents[lane]);
    ASSERT_TRUE(tree.ok) << "lane " << lane << ": " << tree.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HybridBatchBfs,
                         ::testing::Values(std::size_t{1}, std::size_t{32},
                                           std::size_t{64}),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(HybridBatchBfsRegression, WideBatchesTakePullRoundsAndCountLiveLanes) {
  // The point of the union-frontier generalization: with 64 lanes saturating
  // the graph, the frontier edge mass crosses the thresholds and the batch
  // actually runs bottom-up rounds.  The live-lane occupancy columns must be
  // populated and bounded by the lane width.
  const GraphSetup setup = rmat_setup(10, 92, 2, 2);
  sim::Cluster cluster(setup.spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(setup.edges, setup.spec, 16);
  BatchBfsOptions options;
  options.direction = TraversalDirection::kHybrid;
  DistributedBatchBfs bfs(dg, cluster, options);
  const std::vector<VertexId> sources = pick_sources(bfs, 64);
  const BatchBfsResult r = bfs.run(sources);

  int pull_rounds = 0;
  std::uint64_t max_live_frontier = 0, max_live_delegate = 0;
  for (const IterationStats& it : r.metrics.per_iteration) {
    if (it.dd_backward || it.dn_backward || it.nd_backward) ++pull_rounds;
    max_live_frontier = std::max(max_live_frontier, it.live_frontier_lanes);
    max_live_delegate = std::max(max_live_delegate, it.live_delegate_lanes);
  }
  EXPECT_GE(pull_rounds, 1);
  EXPECT_GT(max_live_frontier, 1u);
  EXPECT_LE(max_live_frontier, 64u);
  EXPECT_GT(max_live_delegate, 1u);
  EXPECT_LE(max_live_delegate, 64u);
}

/// Per-iteration, per-GPU direction decisions of a run, for exact
/// comparison across runs and engines.
std::vector<std::vector<std::array<bool, 3>>> decisions(
    const sim::RunCounters& counters) {
  std::vector<std::vector<std::array<bool, 3>>> out;
  for (const auto& ic : counters.iterations) {
    std::vector<std::array<bool, 3>> row;
    for (const auto& c : ic.gpu) {
      row.push_back({c.dd.backward && c.dd.launched,
                     c.dn.backward && c.dn.launched,
                     c.nd.backward && c.nd.launched});
    }
    out.push_back(std::move(row));
  }
  return out;
}

TEST(HybridBatchBfsRegression, WidthOneReproducesSingleSourceHybridExactly) {
  // At W = 1 the live-lane population is 1 (H_1 = 1), the all-lane pools
  // equal the single-source pools, and the controller observes identical
  // counters -- so the hybrid batch must make the same direction decision
  // every round as the hybrid DistributedBfs and move identical traffic.
  const GraphSetup setup = rmat_setup(10, 93, 2, 2);
  sim::Cluster cluster(setup.spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(setup.edges, setup.spec, 16);

  DistributedBfs single(dg, cluster, {});  // direction_optimized by default
  BatchBfsOptions batch_options;
  batch_options.direction = TraversalDirection::kHybrid;
  DistributedBatchBfs batch(dg, cluster, batch_options);

  const VertexId source = single.sample_source(1);
  const BfsResult sr = single.run(source);
  const std::vector<VertexId> sources{source};
  const BatchBfsResult br = batch.run(sources);

  EXPECT_EQ(br.lane_bits, 1);
  ASSERT_EQ(br.distances.size(), 1u);
  EXPECT_EQ(br.distances[0], sr.distances);

  const RunMetrics& sm = sr.metrics;
  const RunMetrics& bm = br.metrics;
  EXPECT_EQ(bm.iterations, sm.iterations);
  EXPECT_EQ(decisions(bm.counters), decisions(sm.counters));
  EXPECT_EQ(bm.edges_traversed, sm.edges_traversed);
  EXPECT_EQ(bm.exchange_remote_bytes, sm.exchange_remote_bytes);
  EXPECT_EQ(bm.exchange_local_bytes, sm.exchange_local_bytes);
  EXPECT_EQ(bm.mask_reduce_bytes, sm.mask_reduce_bytes);
  EXPECT_EQ(bm.delegate_reduce_iterations, sm.delegate_reduce_iterations);
}

TEST(HybridBatchBfsRegression, ControllerDecisionsAreDeterministic) {
  // Same graph, same sources, same options: the adaptive controller's
  // inputs are all deterministic counters, so two runs must agree on every
  // per-GPU per-round direction decision and on the full modeled outcome.
  const GraphSetup setup = rmat_setup(10, 94, 2, 2);
  sim::Cluster cluster(setup.spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(setup.edges, setup.spec, 16);
  BatchBfsOptions options;
  options.direction = TraversalDirection::kHybrid;
  DistributedBatchBfs bfs(dg, cluster, options);
  const std::vector<VertexId> sources = pick_sources(bfs, 32);

  const BatchBfsResult a = bfs.run(sources);
  const BatchBfsResult b = bfs.run(sources);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.metrics.iterations, b.metrics.iterations);
  EXPECT_EQ(decisions(a.metrics.counters), decisions(b.metrics.counters));
  EXPECT_EQ(a.metrics.edges_traversed, b.metrics.edges_traversed);
  EXPECT_EQ(a.metrics.modeled_ms, b.metrics.modeled_ms);
}

TEST(HybridBatchBfsRegression, ForcedPushDefaultTakesNoPullRounds) {
  // The default direction policy must stay the historic forced-push MS-BFS:
  // no backward kernel ever launches and no decision flags are recorded.
  const GraphSetup setup = rmat_setup(9, 95, 2, 1);
  sim::Cluster cluster(setup.spec);
  const graph::DistributedGraph dg =
      graph::build_distributed(setup.edges, setup.spec, 16);
  DistributedBatchBfs bfs(dg, cluster, {});
  const std::vector<VertexId> sources = pick_sources(bfs, 64);
  const BatchBfsResult r = bfs.run(sources);
  for (const IterationStats& it : r.metrics.per_iteration) {
    EXPECT_FALSE(it.dd_backward || it.dn_backward || it.nd_backward);
  }
  for (const auto& ic : r.metrics.counters.iterations) {
    for (const auto& c : ic.gpu) EXPECT_FALSE(c.direction_decisions);
  }
}

}  // namespace
}  // namespace dsbfs::core
