#include "graph/partition_stats.hpp"

#include <gtest/gtest.h>

#include "graph/degree.hpp"
#include "graph/distributor.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::graph {
namespace {

/// Brute-force edge classification for cross-checking the sweeper.
PartitionStats brute_force(const EdgeList& g, std::uint32_t th) {
  const auto degrees = out_degrees(g);
  PartitionStats s;
  s.threshold = th;
  s.num_vertices = g.num_vertices;
  s.num_edges = g.size();
  for (const auto d : degrees) {
    if (d > th) ++s.delegates;
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    const bool ud = degrees[g.src[i]] > th;
    const bool vd = degrees[g.dst[i]] > th;
    if (ud && vd) {
      ++s.dd_edges;
    } else if (!ud && !vd) {
      ++s.nn_edges;
    } else {
      ++s.dn_nd_edges;
    }
  }
  return s;
}

TEST(PartitionStats, SweeperMatchesBruteForce) {
  const EdgeList g = rmat_graph500({.scale = 11, .seed = 21});
  const PartitionStatsSweeper sweeper(g);
  for (const std::uint32_t th : {0u, 1u, 4u, 16u, 64u, 256u, 1u << 20}) {
    const PartitionStats fast = sweeper.at(th);
    const PartitionStats slow = brute_force(g, th);
    EXPECT_EQ(fast.delegates, slow.delegates) << "th=" << th;
    EXPECT_EQ(fast.dd_edges, slow.dd_edges) << "th=" << th;
    EXPECT_EQ(fast.nn_edges, slow.nn_edges) << "th=" << th;
    EXPECT_EQ(fast.dn_nd_edges, slow.dn_nd_edges) << "th=" << th;
  }
}

TEST(PartitionStats, MonotoneInThreshold) {
  // Raising TH can only demote delegates: delegates and dd fall, nn rises.
  const EdgeList g = rmat_graph500({.scale = 12, .seed = 22});
  const PartitionStatsSweeper sweeper(g);
  PartitionStats prev = sweeper.at(1);
  for (std::uint32_t th = 2; th <= 1024; th *= 2) {
    const PartitionStats cur = sweeper.at(th);
    EXPECT_LE(cur.delegates, prev.delegates);
    EXPECT_LE(cur.dd_edges, prev.dd_edges);
    EXPECT_GE(cur.nn_edges, prev.nn_edges);
    prev = cur;
  }
}

TEST(PartitionStats, PercentagesSumToHundred) {
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 23});
  const PartitionStatsSweeper sweeper(g);
  const PartitionStats s = sweeper.at(32);
  EXPECT_NEAR(s.dd_pct() + s.dn_nd_pct() + s.nn_pct(), 100.0, 1e-9);
}

TEST(PartitionStats, ExtremesCoverAllEdges) {
  const EdgeList g = rmat_graph500({.scale = 10, .seed = 24});
  const PartitionStatsSweeper sweeper(g);
  // TH = 0: every vertex with any out-edge is a delegate; nn edges need two
  // zero-degree endpoints, impossible for a source with an edge -> all dd.
  const PartitionStats low = sweeper.at(0);
  EXPECT_EQ(low.nn_edges, 0u);
  EXPECT_EQ(low.dd_edges, low.num_edges);
  // TH = max: no delegates, all nn.
  const PartitionStats high = sweeper.at(1u << 30);
  EXPECT_EQ(high.delegates, 0u);
  EXPECT_EQ(high.nn_edges, high.num_edges);
}

TEST(PartitionStats, RmatFigure5Shape) {
  // Fig. 5's qualitative claim: a threshold exists where delegates are a
  // small vertex fraction while nn edges stay a small edge fraction -- the
  // regime the whole design relies on.  Use the policy-chosen TH.
  const EdgeList g = rmat_graph500({.scale = 14, .seed = 25});
  const PartitionStatsSweeper sweeper(g);
  const int p = 16;
  const std::uint32_t th = suggest_threshold(sweeper, p);
  const PartitionStats s = sweeper.at(th);
  EXPECT_LE(static_cast<double>(s.delegates),
            4.0 * static_cast<double>(g.num_vertices) / p);
  EXPECT_LT(s.nn_pct(), 35.0);
  EXPECT_GT(s.dd_pct() + s.dn_nd_pct(), 65.0);
  // And the dd share shrinks monotonically across the sweep while nn grows
  // (the crossing structure of Fig. 5).
  EXPECT_GT(sweeper.at(4).dd_pct(), sweeper.at(256).dd_pct());
  EXPECT_LT(sweeper.at(4).nn_pct(), sweeper.at(256).nn_pct());
}

TEST(SuggestThreshold, RespectsDelegateCap) {
  const EdgeList g = rmat_graph500({.scale = 12, .seed = 26});
  const PartitionStatsSweeper sweeper(g);
  for (const int p : {4, 16, 64}) {
    const std::uint32_t th = suggest_threshold(sweeper, p);
    const PartitionStats s = sweeper.at(th);
    EXPECT_LE(static_cast<double>(s.delegates),
              4.0 * static_cast<double>(g.num_vertices) / p)
        << "p=" << p;
  }
}

TEST(SuggestThreshold, GrowsWithGpuCount) {
  // More GPUs -> tighter delegate budget (d <= 4n/p) -> higher TH.  This is
  // the mechanism behind Fig. 7's sqrt(2)-per-scale growth along the weak
  // scaling curve.
  const EdgeList g = rmat_graph500({.scale = 13, .seed = 27});
  const PartitionStatsSweeper sweeper(g);
  const std::uint32_t th_small = suggest_threshold(sweeper, 2);
  const std::uint32_t th_large = suggest_threshold(sweeper, 128);
  EXPECT_LE(th_small, th_large);
}

TEST(SuggestThreshold, MatchesSweeperCounts) {
  const EdgeList g = rmat_graph500({.scale = 11, .seed = 28});
  const PartitionStatsSweeper sweeper(g);
  EXPECT_EQ(sweeper.num_vertices(), g.num_vertices);
  EXPECT_EQ(sweeper.num_edges(), g.size());
}

}  // namespace
}  // namespace dsbfs::graph
