#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace dsbfs::sim {
namespace {

TEST(Timeline, IndependentTasksOverlap) {
  Timeline tl;
  tl.add_task("a", 0, 10.0, ResourceId{}, {});
  tl.add_task("b", 0, 20.0, ResourceId{}, {});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 20.0);
}

TEST(Timeline, DependenciesSerialize) {
  Timeline tl;
  const TaskId a = tl.add_task("a", 0, 10.0, ResourceId{}, {});
  const TaskId b = tl.add_task("b", 0, 5.0, ResourceId{}, {a});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.task_start_us(b), 10.0);
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 15.0);
}

TEST(Timeline, DiamondDependency) {
  Timeline tl;
  const TaskId a = tl.add_task("a", 0, 4.0, ResourceId{}, {});
  const TaskId b = tl.add_task("b", 0, 10.0, ResourceId{}, {a});
  const TaskId c = tl.add_task("c", 0, 2.0, ResourceId{}, {a});
  const TaskId d = tl.add_task("d", 0, 1.0, ResourceId{}, {b, c});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.task_start_us(d), 14.0);
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 15.0);
}

TEST(Timeline, ResourceContentionSerializes) {
  Timeline tl;
  const ResourceId gpu = tl.add_resource("gpu");
  tl.add_task("k1", 0, 10.0, gpu, {});
  tl.add_task("k2", 0, 10.0, gpu, {});
  tl.schedule();
  // Same resource: no overlap even without dependencies.
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 20.0);
  EXPECT_DOUBLE_EQ(tl.resource_busy_us(gpu), 20.0);
}

TEST(Timeline, DistinctResourcesOverlap) {
  Timeline tl;
  const ResourceId gpu = tl.add_resource("gpu");
  const ResourceId nic = tl.add_resource("nic");
  tl.add_task("compute", 0, 10.0, gpu, {});
  tl.add_task("send", 1, 10.0, nic, {});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 10.0);
}

TEST(Timeline, CategorySumsIgnoreOverlap) {
  // Matches the paper's stacked charts: sums may exceed elapsed time.
  Timeline tl;
  const ResourceId gpu = tl.add_resource("gpu");
  const ResourceId nic = tl.add_resource("nic");
  tl.add_task("compute", 0, 10.0, gpu, {});
  tl.add_task("send", 1, 8.0, nic, {});
  tl.add_task("compute2", 0, 5.0, gpu, {});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.category_total_us(0), 15.0);
  EXPECT_DOUBLE_EQ(tl.category_total_us(1), 8.0);
  EXPECT_LT(tl.makespan_us(), 15.0 + 8.0);
}

TEST(Timeline, CommOverlapsComputeViaDependencyStructure) {
  // Pipeline shape: compute(iter1) -> send(iter1) while compute(iter2) runs.
  Timeline tl;
  const ResourceId gpu = tl.add_resource("gpu");
  const ResourceId nic = tl.add_resource("nic");
  const TaskId c1 = tl.add_task("c1", 0, 10.0, gpu, {});
  tl.add_task("s1", 1, 10.0, nic, {c1});
  tl.add_task("c2", 0, 10.0, gpu, {c1});
  tl.schedule();
  // send(1) and compute(2) overlap perfectly.
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 20.0);
}

TEST(Timeline, IncrementalScheduling) {
  Timeline tl;
  const TaskId a = tl.add_task("a", 0, 5.0, ResourceId{}, {});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 5.0);
  tl.add_task("b", 0, 5.0, ResourceId{}, {a});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.makespan_us(), 10.0);
}

TEST(Timeline, RejectsForwardDependencies) {
  Timeline tl;
  EXPECT_THROW(tl.add_task("bad", 0, 1.0, ResourceId{}, {TaskId{5}}),
               std::invalid_argument);
}

TEST(Timeline, ZeroDurationTasksChain) {
  Timeline tl;
  const TaskId a = tl.add_task("a", 0, 0.0, ResourceId{}, {});
  const TaskId b = tl.add_task("b", 0, 0.0, ResourceId{}, {a});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.task_finish_us(b), 0.0);
}

TEST(Timeline, NegativeDurationClampedToZero) {
  Timeline tl;
  const TaskId a = tl.add_task("a", 0, -5.0, ResourceId{}, {});
  tl.schedule();
  EXPECT_DOUBLE_EQ(tl.task_finish_us(a), 0.0);
}

}  // namespace
}  // namespace dsbfs::sim
