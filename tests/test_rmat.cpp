#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/parallel.hpp"

namespace dsbfs::graph {
namespace {

TEST(Rmat, SizesFollowGraph500Spec) {
  RmatParams p;
  p.scale = 10;
  EXPECT_EQ(p.num_vertices(), 1024u);
  EXPECT_EQ(p.num_directed_edges(), 1024u * 16);
  const EdgeList raw = rmat_edges(p);
  EXPECT_EQ(raw.num_vertices, 1024u);
  EXPECT_EQ(raw.size(), 1024u * 16);
  const EdgeList full = rmat_graph500(p);
  EXPECT_EQ(full.size(), 1024u * 32);  // doubled
  EXPECT_EQ(rmat_teps_edges(p), 1024u * 16);
}

TEST(Rmat, VerticesInRange) {
  RmatParams p;
  p.scale = 8;
  const EdgeList g = rmat_graph500(p);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LT(g.src[i], 256u);
    EXPECT_LT(g.dst[i], 256u);
  }
}

TEST(Rmat, DeterministicForSameSeed) {
  RmatParams p;
  p.scale = 9;
  p.seed = 5;
  const EdgeList a = rmat_graph500(p);
  const EdgeList b = rmat_graph500(p);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

TEST(Rmat, DifferentSeedsDiffer) {
  RmatParams p;
  p.scale = 9;
  p.seed = 1;
  const EdgeList a = rmat_edges(p);
  p.seed = 2;
  const EdgeList b = rmat_edges(p);
  EXPECT_NE(a.src, b.src);
}

TEST(Rmat, IndependentOfWorkerCount) {
  // Counter-based RNG: the same graph regardless of parallel split.
  RmatParams p;
  p.scale = 10;
  util::set_parallel_worker_count(1);
  const EdgeList serial = rmat_edges(p);
  util::set_parallel_worker_count(13);
  const EdgeList parallel = rmat_edges(p);
  util::set_parallel_worker_count(0);
  EXPECT_EQ(serial.src, parallel.src);
  EXPECT_EQ(serial.dst, parallel.dst);
}

TEST(Rmat, PowerLawDegreeSkew) {
  // RMAT with A=0.57 concentrates edges: the top 1% of vertices should own
  // a large share of edges, and many vertices should be isolated.
  RmatParams p;
  p.scale = 14;
  const EdgeList g = rmat_graph500(p);
  auto degrees = out_degrees(g);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const std::size_t top1pct = degrees.size() / 100;
  std::uint64_t top_edges = 0, total = 0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    total += degrees[i];
    if (i < top1pct) top_edges += degrees[i];
  }
  EXPECT_GT(static_cast<double>(top_edges) / static_cast<double>(total), 0.3);
  EXPECT_GT(count_zero_degree(degrees), degrees.size() / 10);
}

TEST(Rmat, PermutationTogglesLabelLocality) {
  // Without permutation, low vertex ids dominate high degrees (quadrant A
  // bias).  With permutation the degree mass spreads across the id space.
  RmatParams p;
  p.scale = 12;
  p.permute = false;
  const auto deg_raw = out_degrees(rmat_graph500(p));
  p.permute = true;
  const auto deg_perm = out_degrees(rmat_graph500(p));

  auto mass_in_low_quarter = [](const std::vector<std::uint32_t>& deg) {
    std::uint64_t low = 0, total = 0;
    for (std::size_t v = 0; v < deg.size(); ++v) {
      total += deg[v];
      if (v < deg.size() / 4) low += deg[v];
    }
    return static_cast<double>(low) / static_cast<double>(total);
  };
  EXPECT_GT(mass_in_low_quarter(deg_raw), 0.5);
  EXPECT_LT(mass_in_low_quarter(deg_perm), 0.5);
}

TEST(Rmat, SymmetryAfterDoubling) {
  RmatParams p;
  p.scale = 8;
  const EdgeList g = rmat_graph500(p);
  // Every (u,v) must have a matching (v,u).
  std::multiset<std::pair<VertexId, VertexId>> edges;
  for (std::size_t i = 0; i < g.size(); ++i) edges.insert({g.src[i], g.dst[i]});
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_TRUE(edges.count({g.dst[i], g.src[i]}) > 0);
  }
}

TEST(Rmat, RejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_THROW(rmat_edges(p), std::invalid_argument);
  p.scale = 10;
  p.a = 0.9;
  p.b = 0.3;
  p.c = 0.3;
  EXPECT_THROW(rmat_edges(p), std::invalid_argument);
}

}  // namespace
}  // namespace dsbfs::graph
