#include <gtest/gtest.h>

#include <string>

#include "baseline/serial_bfs.hpp"
#include "core/bfs.hpp"
#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

/// Property sweep: the distributed (DO)BFS must produce exactly the serial
/// BFS distances for every combination of graph family, cluster topology,
/// degree threshold and option set.  These parameterized cases are the
/// backbone correctness guarantee of the library.
namespace dsbfs::core {
namespace {

enum class GraphFamily { kRmat, kErdosRenyi, kChungLu, kWeb };

struct PropertyCase {
  std::string name;
  GraphFamily family;
  int ranks, gpus;
  std::uint32_t threshold;
  bool direction_optimized;
  bool local_all2all;
  bool uniquify;
  comm::ReduceMode reduce_mode = comm::ReduceMode::kBlocking;
};

graph::EdgeList make_graph(GraphFamily family) {
  switch (family) {
    case GraphFamily::kRmat:
      return graph::rmat_graph500({.scale = 10, .seed = 71});
    case GraphFamily::kErdosRenyi:
      return graph::erdos_renyi(1 << 10, 1 << 13, 72);
    case GraphFamily::kChungLu: {
      graph::ChungLuParams p;
      p.num_vertices = 1 << 10;
      p.num_edges = 1 << 13;
      p.seed = 73;
      return graph::make_symmetric(graph::chung_lu(p));
    }
    case GraphFamily::kWeb: {
      graph::WebGraphLikeParams p;
      p.chain_length = 24;
      p.community_size = 64;
      p.seed = 74;
      return graph::webgraph_like(p);
    }
  }
  return {};
}

class BfsProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(BfsProperty, MatchesSerialAndValidates) {
  const PropertyCase c = GetParam();
  const graph::EdgeList g = make_graph(c.family);
  sim::ClusterSpec spec;
  spec.num_ranks = c.ranks;
  spec.gpus_per_rank = c.gpus;

  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, c.threshold);

  BfsOptions options;
  options.direction_optimized = c.direction_optimized;
  options.local_all2all = c.local_all2all;
  options.uniquify = c.uniquify;
  options.reduce_mode = c.reduce_mode;
  DistributedBfs bfs(dg, cluster, options);

  const graph::HostCsr csr = graph::build_host_csr(g);
  for (std::uint64_t k = 0; k < 3; ++k) {
    const VertexId source = bfs.sample_source(k * 17 + 1);
    const BfsResult result = bfs.run(source);

    // Exact equality with the serial reference.
    const auto expected = baseline::serial_bfs(csr, source);
    const ValidationReport ref =
        validate_against_reference(result.distances, expected);
    ASSERT_TRUE(ref.ok) << ref.error << " (source " << source << ")";

    // And the Graph500-style structural validation.
    const ValidationReport structural =
        validate_distances(g, source, result.distances);
    ASSERT_TRUE(structural.ok) << structural.error;

    // Metric invariants.
    const RunMetrics& m = result.metrics;
    EXPECT_GT(m.iterations, 0);
    EXPECT_LE(m.delegate_reduce_iterations, m.iterations);
    EXPECT_GT(m.edges_traversed, 0u);
    EXPECT_EQ(m.teps_edges, g.size() / 2);
    EXPECT_GT(m.modeled_ms, 0.0);
  }
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  // Topology sweep at fixed options.
  for (const auto& [ranks, gpus] :
       {std::pair{1, 1}, {1, 4}, {4, 1}, {2, 2}, {2, 4}, {4, 2}, {3, 2}}) {
    cases.push_back({"rmat_t" + std::to_string(ranks) + "x" +
                         std::to_string(gpus),
                     GraphFamily::kRmat, ranks, gpus, 16, true, false, false});
  }
  // Threshold sweep.
  for (const std::uint32_t th : {0u, 2u, 8u, 32u, 128u, 100000u}) {
    cases.push_back({"rmat_th" + std::to_string(th), GraphFamily::kRmat, 2, 2,
                     th, true, false, false});
  }
  // Option matrix on a fixed topology.
  for (const bool dop : {false, true}) {
    for (const bool l : {false, true}) {
      for (const bool u : {false, true}) {
        cases.push_back({std::string("rmat_opt_") + (dop ? "do" : "xx") +
                             (l ? "_l" : "") + (u ? "_u" : ""),
                         GraphFamily::kRmat, 2, 2, 16, dop, l, u});
      }
    }
  }
  // Non-blocking reduction.
  cases.push_back({"rmat_ir", GraphFamily::kRmat, 4, 2, 16, true, true, true,
                   comm::ReduceMode::kNonBlocking});
  // Other graph families.
  for (const auto family : {GraphFamily::kErdosRenyi, GraphFamily::kChungLu,
                            GraphFamily::kWeb}) {
    const char* name = family == GraphFamily::kErdosRenyi ? "er"
                       : family == GraphFamily::kChungLu  ? "cl"
                                                          : "web";
    cases.push_back({std::string(name) + "_do", family, 2, 2, 16, true, false,
                     false});
    cases.push_back({std::string(name) + "_plain", family, 2, 2, 16, false,
                     false, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfsProperty,
                         ::testing::ValuesIn(property_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(BfsDeterminism, SameRunTwiceIdentical) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 75});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const auto dg = build_distributed(g, spec, 16);
  DistributedBfs bfs(dg, cluster);
  const VertexId source = bfs.sample_source(1);
  const BfsResult a = bfs.run(source);
  const BfsResult b = bfs.run(source);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.metrics.iterations, b.metrics.iterations);
  EXPECT_EQ(a.metrics.edges_traversed, b.metrics.edges_traversed);
}

TEST(BfsWorkload, DirectionOptimizationReducesTraversedEdges) {
  // The reason DOBFS exists (Section II-B): the backward pull must shrink
  // the traversal workload substantially on scale-free graphs.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 12, .seed = 76});
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  sim::Cluster cluster(spec);
  const auto dg = build_distributed(g, spec, 32);

  BfsOptions plain;
  plain.direction_optimized = false;
  BfsOptions dopt;
  dopt.direction_optimized = true;

  DistributedBfs bfs_plain(dg, cluster, plain);
  DistributedBfs bfs_do(dg, cluster, dopt);
  const VertexId source = bfs_plain.sample_source(2);
  const auto r_plain = bfs_plain.run(source);
  const auto r_do = bfs_do.run(source);

  EXPECT_EQ(r_plain.distances, r_do.distances);
  EXPECT_LT(r_do.metrics.edges_traversed,
            r_plain.metrics.edges_traversed / 2);
}

TEST(BfsCommVolume, MaskBytesFollowSectionVFormula) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 77});
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const auto dg = build_distributed(g, spec, 16);
  DistributedBfs bfs(dg, cluster);
  const auto r = bfs.run(bfs.sample_source(0));
  // mask_reduce_bytes = 2 * d/8 * prank * S' exactly (assembled metric).
  const std::uint64_t d_bytes = (dg.num_delegates() + 7) / 8;
  EXPECT_EQ(r.metrics.mask_reduce_bytes,
            2 * d_bytes * 4 *
                static_cast<std::uint64_t>(r.metrics.delegate_reduce_iterations));
  // S' <= S, and on RMAT typically strictly smaller... at minimum bounded.
  EXPECT_LE(r.metrics.delegate_reduce_iterations, r.metrics.iterations);
}

}  // namespace
}  // namespace dsbfs::core
