#include "sim/net_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dsbfs::sim {
namespace {

TEST(NetModel, NvlinkLatencyPlusBandwidth) {
  NetModel m;
  EXPECT_DOUBLE_EQ(m.nvlink_us(0), 0.0);
  const double t = m.nvlink_us(40ULL << 30);  // 40 GB at 40 GB/s ~ 1 s
  EXPECT_NEAR(t, 1e6 + m.config().nvlink_latency_us, 1e3);
}

TEST(NetModel, TreeRounds) {
  EXPECT_EQ(NetModel::tree_rounds(1), 0);
  EXPECT_EQ(NetModel::tree_rounds(2), 1);
  EXPECT_EQ(NetModel::tree_rounds(3), 2);
  EXPECT_EQ(NetModel::tree_rounds(4), 2);
  EXPECT_EQ(NetModel::tree_rounds(5), 3);
  EXPECT_EQ(NetModel::tree_rounds(62), 6);
  EXPECT_EQ(NetModel::tree_rounds(64), 6);
}

TEST(NetModel, AllreduceScalesLogarithmically) {
  NetModel m;
  const std::uint64_t bytes = 1 << 20;
  const double t4 = m.allreduce_us(bytes, 4);
  const double t16 = m.allreduce_us(bytes, 16);
  const double t64 = m.allreduce_us(bytes, 64);
  // log2: 2, 4, 6 rounds -> ratios 2x and 1.5x.
  EXPECT_NEAR(t16 / t4, 2.0, 1e-9);
  EXPECT_NEAR(t64 / t16, 1.5, 1e-9);
}

TEST(NetModel, AllreduceTrivialCases) {
  NetModel m;
  EXPECT_DOUBLE_EQ(m.allreduce_us(100, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.allreduce_us(0, 8), 0.0);
}

TEST(NetModel, IallreduceSlowerThanAllreduce) {
  // The paper's Fig. 8 observation: the fresh MPI_Iallreduce implementation
  // is substantially slower per call than MPI_Allreduce.
  NetModel m;
  EXPECT_GT(m.iallreduce_us(1 << 20, 16), m.allreduce_us(1 << 20, 16));
}

TEST(NetModel, P2pMonotonicInSize) {
  NetModel m;
  double prev = 0;
  for (std::uint64_t b = 1024; b <= (64ULL << 20); b *= 4) {
    const double t = m.p2p_us(b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NetModel, MessageSizeSweepHasInteriorOptimumNearFourMb) {
  // Section VI-A: for 16 MB of data the best chunk size is ~4 MB --
  // per-chunk overhead vs exposed staging trade-off.
  NetModel m;
  const std::uint64_t total = 16ULL << 20;
  std::map<double, double> by_chunk;
  double best_chunk = 0, best_time = 1e18;
  for (double chunk = 128.0 * 1024; chunk <= 16.0 * 1024 * 1024; chunk *= 2) {
    const double t = m.p2p_us(total, chunk);
    by_chunk[chunk] = t;
    if (t < best_time) {
      best_time = t;
      best_chunk = chunk;
    }
  }
  EXPECT_DOUBLE_EQ(best_chunk, 4.0 * 1024 * 1024);
  // And the curve is genuinely U-shaped: both extremes are worse.
  EXPECT_GT(by_chunk[128.0 * 1024], best_time);
  EXPECT_GT(by_chunk[16.0 * 1024 * 1024], best_time);
}

TEST(NetModel, P2pZeroBytesFree) {
  NetModel m;
  EXPECT_DOUBLE_EQ(m.p2p_us(0), 0.0);
}

TEST(NetModel, ConfigurableBandwidth) {
  NetModelConfig cfg;
  cfg.nic_bw_gbytes = 25.0;  // double the EDR default
  NetModel fast(cfg);
  NetModel slow;
  // Large transfers should approach a 2x gap.
  const std::uint64_t bytes = 256ULL << 20;
  EXPECT_LT(fast.p2p_us(bytes), slow.p2p_us(bytes));
}

// ---- per-hop charges of the multi-hop exchange topologies ------------------

TEST(NetModel, HopDegeneratesToPointLinksAtFewFlows) {
  // flows <= links: exactly the single-link charge (no wave serialization).
  NetModel m;  // defaults: 1 NIC per node, 2 NVLink ports per GPU
  const std::uint64_t bytes = 8ULL << 20;
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, true, 1), m.p2p_us(bytes));
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, false, 1), m.nvlink_us(bytes));
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, false, 2), m.nvlink_us(bytes));
}

TEST(NetModel, HopSharesLinkBandwidthInWaves) {
  // Flows beyond the link count serialize: ceil(flows / links) back-to-back
  // transfers.  Inter-node hops contend for the node's single NIC; the
  // intra-node gather/scatter rides two NVLink ports per GPU.
  NetModel m;
  const std::uint64_t bytes = 8ULL << 20;
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, true, 3), 3.0 * m.p2p_us(bytes));
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, false, 3), 2.0 * m.nvlink_us(bytes));
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, false, 4), 2.0 * m.nvlink_us(bytes));
  EXPECT_DOUBLE_EQ(m.hop_us(bytes, false, 5), 3.0 * m.nvlink_us(bytes));
}

TEST(NetModel, HopLinkCountsConfigurable) {
  // Four NICs swallow four concurrent inter-node flows in one wave where the
  // default single NIC needs four.
  NetModelConfig cfg;
  cfg.nics_per_node = 4;
  NetModel wide(cfg);
  NetModel narrow;
  const std::uint64_t bytes = 8ULL << 20;
  EXPECT_DOUBLE_EQ(wide.hop_us(bytes, true, 4), wide.p2p_us(bytes));
  EXPECT_DOUBLE_EQ(narrow.hop_us(bytes, true, 4), 4.0 * narrow.p2p_us(bytes));
}

TEST(NetModel, HopZeroBytesFree) {
  NetModel m;
  EXPECT_DOUBLE_EQ(m.hop_us(0, true, 64), 0.0);
  EXPECT_DOUBLE_EQ(m.hop_us(0, false, 64), 0.0);
}

TEST(NetModel, LinkLatencySelectsLinkClass) {
  NetModel m;
  EXPECT_DOUBLE_EQ(m.link_latency_us(true), m.config().nic_latency_us);
  EXPECT_DOUBLE_EQ(m.link_latency_us(false), m.config().nvlink_latency_us);
}

}  // namespace
}  // namespace dsbfs::sim
