#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "core/bfs.hpp"
#include "core/sssp.hpp"
#include "graph/builder.hpp"
#include "graph/rmat.hpp"
#include "sim/cluster.hpp"
#include "sim/topology.hpp"

namespace dsbfs {
namespace {

// ---- oracle determinism ---------------------------------------------------
// Every decision is a pure hash of (seed, from, to, tag, attempt); nothing
// below may depend on call order or thread interleaving.

TEST(FaultPlan, DecisionsArePureFunctionsOfTheSchedule) {
  const sim::FaultPlanConfig cfg{.seed = 42,
                                 .drop_rate = 0.2,
                                 .corrupt_rate = 0.2,
                                 .duplicate_rate = 0.1,
                                 .delay_rate = 0.1};
  const sim::FaultPlan a(cfg), b(cfg);
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      for (const int tag : {10, 42, 74}) {
        for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
          EXPECT_EQ(a.decide(from, to, tag, attempt),
                    b.decide(from, to, tag, attempt));
          EXPECT_EQ(a.corrupt_bit(from, to, tag, attempt, 512),
                    b.corrupt_bit(from, to, tag, attempt, 512));
          EXPECT_LT(a.corrupt_bit(from, to, tag, attempt, 512), 512u);
        }
      }
    }
  }
}

TEST(FaultPlan, RatesShapeTheActionDistribution) {
  const sim::FaultPlan plan({.seed = 7,
                             .drop_rate = 0.25,
                             .corrupt_rate = 0.25,
                             .duplicate_rate = 0.25,
                             .delay_rate = 0.25});
  std::map<sim::FaultAction, int> histogram;
  constexpr int kAttempts = 4000;
  for (std::uint64_t attempt = 0; attempt < kAttempts; ++attempt) {
    ++histogram[plan.decide(0, 1, 10, attempt)];
  }
  // Every kind (and no delivery starvation) at equal 25% rates; a loose
  // 15%..35% window keeps the test robust to the hash's finite sample.
  for (const auto action :
       {sim::FaultAction::kDrop, sim::FaultAction::kCorrupt,
        sim::FaultAction::kDuplicate, sim::FaultAction::kDelay}) {
    EXPECT_GT(histogram[action], kAttempts * 15 / 100);
    EXPECT_LT(histogram[action], kAttempts * 35 / 100);
  }
  EXPECT_EQ(histogram[sim::FaultAction::kDeliver], 0);
}

TEST(FaultPlan, AllZeroRatesAlwaysDeliver) {
  const sim::FaultPlan plan({.seed = 9});
  EXPECT_FALSE(plan.config().enabled());
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    EXPECT_EQ(plan.decide(0, 1, 10, attempt), sim::FaultAction::kDeliver);
  }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  const sim::FaultPlan a({.seed = 1, .drop_rate = 0.5});
  const sim::FaultPlan b({.seed = 2, .drop_rate = 0.5});
  int diverged = 0;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    diverged += a.decide(0, 1, 10, attempt) != b.decide(0, 1, 10, attempt);
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultPlan, LogIsSortedRegardlessOfRecordOrder) {
  sim::FaultPlan plan({.drop_rate = 1.0});
  // Record from several threads in scrambled order; log() must come back in
  // one canonical order so same-seed runs compare equal.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&plan, t] {
      for (int i = 7; i >= 0; --i) {
        plan.record({sim::FaultKind::kDrop, t, (t + 1) % 4, 10,
                     static_cast<std::uint64_t>(i)});
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto log = plan.log();
  ASSERT_EQ(log.size(), 32u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_TRUE(log[i - 1] < log[i] || log[i - 1] == log[i]);
  }
}

// ---- end-to-end replayability ---------------------------------------------
// The ISSUE's contract: the same fault seed must produce the identical
// injected-fault log, the identical recovery counters and the identical
// answer, run after run, threads and all.

class FaultReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.num_ranks = 2;
    spec_.gpus_per_rank = 2;
    edges_ = graph::rmat_graph500({.scale = 8, .seed = 5});
    dg_ = graph::build_distributed(edges_, spec_, 16);
  }

  sim::ClusterSpec spec_;
  graph::EdgeList edges_;
  graph::DistributedGraph dg_;
};

TEST_F(FaultReplayTest, SameSeedSameLogSameCountersBfs) {
  core::BfsOptions options;
  options.resilience.faults.seed = 11;
  options.resilience.faults.drop_rate = 0.05;
  options.resilience.faults.corrupt_rate = 0.05;
  options.resilience.faults.duplicate_rate = 0.02;
  options.resilience.faults.delay_rate = 0.02;

  sim::Cluster cluster(spec_);
  auto run = [&] { return core::DistributedBfs(dg_, cluster, options).run(3); };
  const core::BfsResult a = run();
  const core::BfsResult b = run();

  ASSERT_FALSE(a.metrics.fault.events.empty());
  EXPECT_EQ(a.metrics.fault.events, b.metrics.fault.events);
  EXPECT_EQ(a.metrics.fault.retries, b.metrics.fault.retries);
  EXPECT_EQ(a.metrics.fault.corrupt_bins, b.metrics.fault.corrupt_bins);
  EXPECT_EQ(a.metrics.fault.recovery_ns, b.metrics.fault.recovery_ns);
  EXPECT_EQ(a.metrics.retries, b.metrics.retries);
  EXPECT_EQ(a.metrics.exchange_remote_bytes, b.metrics.exchange_remote_bytes);
  EXPECT_EQ(a.metrics.modeled_ms, b.metrics.modeled_ms);
  EXPECT_EQ(a.distances, b.distances);
}

TEST_F(FaultReplayTest, SameSeedSameLogSameCountersSssp) {
  core::SsspOptions options;
  options.resilience.faults.seed = 23;
  options.resilience.faults.drop_rate = 0.05;
  options.resilience.faults.corrupt_rate = 0.05;

  sim::Cluster cluster(spec_);
  auto run = [&] {
    return core::DistributedSssp(dg_, cluster, options).run(3);
  };
  const core::SsspResult a = run();
  const core::SsspResult b = run();

  ASSERT_FALSE(a.fault.events.empty());
  EXPECT_EQ(a.fault.events, b.fault.events);
  EXPECT_EQ(a.fault.retries, b.fault.retries);
  EXPECT_EQ(a.fault.recovery_ns, b.fault.recovery_ns);
  EXPECT_EQ(a.update_bytes_remote, b.update_bytes_remote);
  EXPECT_EQ(a.modeled_ms, b.modeled_ms);
  EXPECT_EQ(a.distances, b.distances);
}

TEST_F(FaultReplayTest, LossyWireStaysBitExactUnderEveryExchangeTopology) {
  // Chaos x topology: drop/corrupt/duplicate on every hop class (the intra
  // gather, the inter leg, the scatter) must heal hop-locally -- the answer
  // stays the clean flat answer, and the same seed replays the identical
  // fault log and counters run after run.
  sim::Cluster cluster(spec_);
  const core::BfsResult clean = core::DistributedBfs(dg_, cluster).run(3);

  for (const auto topology : {sim::ExchangeTopology::kHierarchical,
                              sim::ExchangeTopology::kButterfly}) {
    core::BfsOptions options;
    options.exchange_topology = topology;
    options.resilience.faults.seed = 31;
    options.resilience.faults.drop_rate = 0.05;
    options.resilience.faults.corrupt_rate = 0.05;
    options.resilience.faults.duplicate_rate = 0.02;

    auto run = [&] {
      return core::DistributedBfs(dg_, cluster, options).run(3);
    };
    const core::BfsResult a = run();
    const core::BfsResult b = run();

    EXPECT_EQ(a.distances, clean.distances) << sim::to_string(topology);
    ASSERT_FALSE(a.metrics.fault.events.empty()) << sim::to_string(topology);
    EXPECT_GT(a.metrics.retries + a.metrics.corrupt_bins, 0u)
        << sim::to_string(topology);
    EXPECT_EQ(a.metrics.fault.events, b.metrics.fault.events)
        << sim::to_string(topology);
    EXPECT_EQ(a.metrics.retries, b.metrics.retries) << sim::to_string(topology);
    EXPECT_EQ(a.metrics.modeled_ms, b.metrics.modeled_ms)
        << sim::to_string(topology);
    EXPECT_EQ(a.distances, b.distances) << sim::to_string(topology);
  }
}

TEST_F(FaultReplayTest, DifferentSeedsChangeTheLogNotTheAnswer) {
  core::BfsOptions options;
  options.resilience.faults.drop_rate = 0.08;
  options.resilience.faults.corrupt_rate = 0.05;

  sim::Cluster cluster(spec_);
  options.resilience.faults.seed = 100;
  const core::BfsResult a = core::DistributedBfs(dg_, cluster, options).run(3);
  options.resilience.faults.seed = 200;
  const core::BfsResult b = core::DistributedBfs(dg_, cluster, options).run(3);

  EXPECT_NE(a.metrics.fault.events, b.metrics.fault.events);
  EXPECT_EQ(a.distances, b.distances);  // self-healing: answers never move
}

}  // namespace
}  // namespace dsbfs
