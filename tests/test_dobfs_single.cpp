#include "baseline/dobfs_single.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace dsbfs::baseline {
namespace {

using graph::build_host_csr;

class DobfsGraphs : public ::testing::TestWithParam<int> {};

TEST_P(DobfsGraphs, MatchesSerialOnRmat) {
  const graph::EdgeList g =
      graph::rmat_graph500({.scale = 10, .seed = GetParam() * 7ULL + 1});
  const auto csr = build_host_csr(g);
  for (VertexId source = 1; source < 40; source += 13) {
    if (csr.row_length(source) == 0) continue;
    const auto expected = serial_bfs(csr, source);
    const DobfsResult got = dobfs_single(csr, source);
    EXPECT_EQ(got.distances, expected) << "source " << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DobfsGraphs, ::testing::Values(1, 2, 3));

TEST(Dobfs, MatchesSerialOnNamedGraphs) {
  for (const auto& g :
       {graph::path_graph(64), graph::star_graph(64), graph::cycle_graph(33),
        graph::grid_graph(8, 8), graph::binary_tree(63)}) {
    const auto csr = build_host_csr(g);
    EXPECT_EQ(dobfs_single(csr, 0).distances, serial_bfs(csr, 0));
  }
}

TEST(Dobfs, SwitchesToBottomUpOnDenseGraphs) {
  // RMAT's dense core should trigger the bottom-up phase.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 12, .seed = 5});
  const auto csr = build_host_csr(g);
  const DobfsResult r = dobfs_single(csr, 1);
  EXPECT_GT(r.bottom_up_iterations, 0);
  EXPECT_LE(r.bottom_up_iterations, r.iterations);
}

TEST(Dobfs, ReducesWorkloadOnScaleFreeGraphs) {
  // The whole point of direction optimization (Section II-B): m' << m and
  // far below the top-down workload.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 13, .seed = 6});
  const auto csr = build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  const std::uint64_t top_down = serial_bfs_workload(csr, source);
  const DobfsResult r = dobfs_single(csr, source);
  EXPECT_LT(r.edges_examined, top_down / 2);
}

TEST(Dobfs, StaysTopDownOnPathGraphs) {
  // Long-diameter graphs keep tiny frontiers: apart from the tail (where
  // the unexplored-edge pool shrinks below the alpha threshold), the whole
  // traversal stays top-down (Section VI-D's long-tail observation).
  const auto csr = build_host_csr(graph::path_graph(4096));
  const DobfsResult r = dobfs_single(csr, 0);
  EXPECT_LT(r.bottom_up_iterations, 32);
  EXPECT_EQ(r.iterations, 4096);  // one per frontier, incl. the final empty
  // With switching disabled entirely, behaviour is pure top-down.
  DobfsParams no_switch;
  no_switch.alpha = 1e-9;  // frontier_edges never exceed unexplored/alpha
  const DobfsResult pure = dobfs_single(csr, 0, no_switch);
  EXPECT_EQ(pure.bottom_up_iterations, 0);
  EXPECT_EQ(pure.distances, r.distances);
}

TEST(Dobfs, UnreachableComponentUntouched) {
  const auto csr = build_host_csr(graph::two_cliques(8));
  const DobfsResult r = dobfs_single(csr, 0);
  for (VertexId v = 8; v < 16; ++v) EXPECT_EQ(r.distances[v], kUnvisited);
}

TEST(Dobfs, AlphaControlsSwitching) {
  // Beamer's rule: switch bottom-up when frontier_edges > unexplored/alpha;
  // tiny alpha makes the threshold unreachable, huge alpha trips it at once.
  const graph::EdgeList g = graph::rmat_graph500({.scale = 10, .seed = 9});
  const auto csr = build_host_csr(g);
  VertexId source = 0;
  while (csr.row_length(source) == 0) ++source;
  DobfsParams params;
  params.alpha = 1e-9;  // never switch
  const DobfsResult never = dobfs_single(csr, source, params);
  EXPECT_EQ(never.bottom_up_iterations, 0);
  params.alpha = 1e9;  // switch immediately
  params.beta = 1e9;   // and never switch back (n/beta ~ 0 > no frontier)
  const DobfsResult always = dobfs_single(csr, source, params);
  EXPECT_GT(always.bottom_up_iterations, never.bottom_up_iterations);
  EXPECT_EQ(always.bottom_up_iterations, always.iterations);
  // Both remain correct.
  EXPECT_EQ(never.distances, always.distances);
}

}  // namespace
}  // namespace dsbfs::baseline
