#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dsbfs::util {
namespace {

TEST(CounterRng, DeterministicAcrossInstances) {
  CounterRng a(123, 0), b(123, 0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(i), b.bits(i));
  }
}

TEST(CounterRng, AddressableOutOfOrder) {
  // Any worker must be able to generate any draw independently: draw i must
  // not depend on having generated draws < i.
  CounterRng rng(7, 1);
  const std::uint64_t forward = rng.bits(500);
  CounterRng rng2(7, 1);
  std::uint64_t x = 0;
  for (std::uint64_t i = 1000; i-- > 0;) {
    if (i == 500) x = rng2.bits(i);
  }
  EXPECT_EQ(forward, x);
}

TEST(CounterRng, StreamsIndependent) {
  CounterRng a(5, 0), b(5, 1);
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.bits(i) == b.bits(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, UniformInUnitInterval) {
  CounterRng rng(11, 0);
  double sum = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = rng.uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CounterRng, BelowRespectsBound) {
  CounterRng rng(13, 0);
  std::vector<int> histogram(10, 0);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(i, 10);
    ASSERT_LT(v, 10u);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (const int count : histogram) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(CounterRng, BelowOneAlwaysZero) {
  CounterRng rng(17, 0);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(rng.below(i, 1), 0u);
}

TEST(SequentialRng, ReproducibleSequence) {
  SequentialRng a(3), b(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SequentialRng, UniformAndBelow) {
  SequentialRng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ASSERT_LT(rng.below(17), 17u);
  }
}

}  // namespace
}  // namespace dsbfs::util
