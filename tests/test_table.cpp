#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dsbfs::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(std::uint64_t{12345});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value  |"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12,345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, DoublePrecisionControl) {
  Table t({"v"});
  t.row().add(3.14159, 3);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KB");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(1ULL << 20), "1.00 MB");
  EXPECT_EQ(format_bytes(1ULL << 30), "1.00 GB");
  EXPECT_EQ(format_bytes(3ULL << 40), "3.00 TB");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000000ULL), "1,000,000,000");
}

}  // namespace
}  // namespace dsbfs::util
