#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/query_scheduler.hpp"
#include "graph/generators.hpp"

/// Latency-metrics math of the serving tier: summarize_latencies against a
/// naive sort-based oracle (ties, single-sample and empty inputs included),
/// and the consistency of a real run's assembled metrics -- timestamps in
/// order, wait + service == latency, QPS == queries / makespan, and the
/// modeled iteration-end clock the timestamps come from monotone.
namespace dsbfs::core {
namespace {

/// Independent oracle: sort, then linear interpolation between order
/// statistics at rank p/100 * (n-1).
double naive_percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

void expect_matches_oracle(const std::vector<double>& values) {
  const LatencySummary s = summarize_latencies(values);
  EXPECT_EQ(s.count, values.size());
  EXPECT_DOUBLE_EQ(s.p50, naive_percentile(values, 50));
  EXPECT_DOUBLE_EQ(s.p95, naive_percentile(values, 95));
  EXPECT_DOUBLE_EQ(s.p99, naive_percentile(values, 99));
  double sum = 0;
  double mx = 0;
  for (const double v : values) {
    sum += v;
    mx = std::max(mx, v);
  }
  if (!values.empty()) {
    EXPECT_DOUBLE_EQ(s.mean, sum / static_cast<double>(values.size()));
    EXPECT_DOUBLE_EQ(s.max, mx);
  }
}

TEST(SchedulerMetrics, PercentilesMatchSortOracle) {
  expect_matches_oracle({3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3});
  expect_matches_oracle({10.0, 0.5, 2.25, 7.75});  // interpolated ranks
  // Unsorted input with a wide spread: the summary must sort internally.
  std::vector<double> wide;
  for (int i = 99; i >= 0; --i) wide.push_back(static_cast<double>(i * i));
  expect_matches_oracle(wide);
}

TEST(SchedulerMetrics, TiesCollapseToTheTiedValue) {
  const std::vector<double> ties(7, 4.25);
  expect_matches_oracle(ties);
  const LatencySummary s = summarize_latencies(ties);
  EXPECT_DOUBLE_EQ(s.p50, 4.25);
  EXPECT_DOUBLE_EQ(s.p99, 4.25);
  EXPECT_DOUBLE_EQ(s.mean, 4.25);
  // Partial ties: percentiles between tied neighbours stay on the tie.
  expect_matches_oracle({1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0});
}

TEST(SchedulerMetrics, SingleQueryTraceIsItsOwnEveryPercentile) {
  const LatencySummary s = summarize_latencies({6.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 6.5);
  EXPECT_DOUBLE_EQ(s.p95, 6.5);
  EXPECT_DOUBLE_EQ(s.p99, 6.5);
  EXPECT_DOUBLE_EQ(s.mean, 6.5);
  EXPECT_DOUBLE_EQ(s.max, 6.5);
}

TEST(SchedulerMetrics, EmptyTraceSummarizesToZero) {
  const LatencySummary s = summarize_latencies({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SchedulerMetrics, AssembledRunMetricsAreInternallyConsistent) {
  const graph::EdgeList g = graph::grid_graph(16, 16);
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 1;
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, 4);
  const std::vector<QueryArrival> trace = make_arrival_trace(
      dg, {.queries = 6, .rate = 1.0, .pattern = ArrivalPattern::kUniform,
           .seed = 41});
  QueryScheduler scheduler(dg, cluster, {.width = 2});
  const SchedulerOutcome out = scheduler.run(trace);
  const SchedulerMetrics& m = out.metrics;

  EXPECT_EQ(m.queries, 6u);
  EXPECT_EQ(m.admissions, 6u);
  EXPECT_DOUBLE_EQ(m.modeled_ms, m.run.modeled_ms);
  EXPECT_DOUBLE_EQ(m.queries_per_sec,
                   static_cast<double>(m.queries) / (m.modeled_ms / 1000.0));
  EXPECT_EQ(m.latency.count, m.queries);
  EXPECT_EQ(m.wait.count, m.queries);
  EXPECT_EQ(m.service.count, m.queries);
  EXPECT_GT(m.mean_occupancy, 0.0);
  EXPECT_LE(m.mean_occupancy, 2.0 + 1e-9);  // never above the lane budget

  // The timestamps every latency derives from: the modeled iteration-end
  // clock has one entry per executed iteration and never runs backwards.
  const std::vector<double>& clock = m.run.modeled.iteration_end_ms;
  ASSERT_EQ(clock.size(),
            static_cast<std::size_t>(m.run.counters.iterations.size()));
  ASSERT_EQ(clock.size(), static_cast<std::size_t>(m.run.iterations));
  for (std::size_t i = 1; i < clock.size(); ++i) {
    EXPECT_GE(clock[i], clock[i - 1]) << "iteration " << i;
  }
  EXPECT_GT(clock.back(), 0.0);

  for (std::size_t i = 0; i < out.queries.size(); ++i) {
    const ServedQuery& q = out.queries[i];
    EXPECT_LE(q.arrival_ms, q.admit_ms) << "query " << i;
    EXPECT_LT(q.admit_ms, q.retire_ms) << "query " << i;
    EXPECT_NEAR(q.wait_ms + q.service_ms, q.latency_ms, 1e-9) << "query " << i;
    EXPECT_LE(q.retire_ms, m.modeled_ms + 1e-9) << "query " << i;
  }

  // The summaries summarize exactly the per-query columns.
  std::vector<double> latencies;
  for (const ServedQuery& q : out.queries) latencies.push_back(q.latency_ms);
  EXPECT_DOUBLE_EQ(m.latency.p50, naive_percentile(latencies, 50));
  EXPECT_DOUBLE_EQ(m.latency.p99, naive_percentile(latencies, 99));
}

}  // namespace
}  // namespace dsbfs::core
