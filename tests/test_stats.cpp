#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace dsbfs::util {
namespace {

TEST(Stats, GeometricMeanKnownValues) {
  const std::array<double, 3> v{1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  const std::array<double, 2> w{2.0, 8.0};
  EXPECT_NEAR(geometric_mean(w), 4.0, 1e-9);
}

TEST(Stats, GeometricMeanEdgeCases) {
  EXPECT_EQ(geometric_mean({}), 0.0);
  const std::array<double, 2> with_zero{0.0, 5.0};
  EXPECT_EQ(geometric_mean(with_zero), 0.0);
}

TEST(Stats, HarmonicMeanKnownValues) {
  const std::array<double, 2> v{1.0, 3.0};
  EXPECT_NEAR(harmonic_mean(v), 1.5, 1e-9);
  // Harmonic mean of equal values is the value.
  const std::array<double, 4> w{7.0, 7.0, 7.0, 7.0};
  EXPECT_NEAR(harmonic_mean(w), 7.0, 1e-9);
}

TEST(Stats, MeanOrderingInequality) {
  // harmonic <= geometric <= arithmetic for positive values.
  const std::array<double, 5> v{1.0, 2.0, 3.0, 4.0, 100.0};
  const double h = harmonic_mean(v);
  const double g = geometric_mean(v);
  const double a = arithmetic_mean(v);
  EXPECT_LT(h, g);
  EXPECT_LT(g, a);
}

TEST(Stats, MinMax) {
  const std::array<double, 4> v{3.0, -1.0, 7.0, 2.0};
  EXPECT_EQ(min_of(v), -1.0);
  EXPECT_EQ(max_of(v), 7.0);
}

TEST(Stats, SampleStddev) {
  const std::array<double, 4> v{2.0, 4.0, 4.0, 6.0};
  // mean 4, squared deviations 4+0+0+4 = 8, / 3 -> sqrt(8/3)
  EXPECT_NEAR(sample_stddev(v), std::sqrt(8.0 / 3.0), 1e-9);
  const std::array<double, 1> single{5.0};
  EXPECT_EQ(sample_stddev(single), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(percentile(v, 0), 10.0, 1e-9);
  EXPECT_NEAR(percentile(v, 100), 40.0, 1e-9);
  EXPECT_NEAR(percentile(v, 50), 25.0, 1e-9);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_NEAR(percentile(v, 100), 40.0, 1e-9);
  EXPECT_NEAR(percentile(v, 0), 10.0, 1e-9);
}

TEST(Stats, SummaryAccumulates) {
  Summary s;
  s.add(2.0);
  s.add(8.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_NEAR(s.geomean(), 4.0, 1e-9);
  EXPECT_NEAR(s.mean(), 5.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 8.0);
}

}  // namespace
}  // namespace dsbfs::util
