#include "comm/mask_reduce.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <thread>

namespace dsbfs::comm {
namespace {

struct ReduceCase {
  int ranks;
  int gpus_per_rank;
  std::size_t bits;
};

class MaskReduceShapes : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(MaskReduceShapes, ReduceEqualsUnionEverywhere) {
  const ReduceCase param = GetParam();
  sim::ClusterSpec spec;
  spec.num_ranks = param.ranks;
  spec.gpus_per_rank = param.gpus_per_rank;
  const int p = spec.total_gpus();

  Transport t(spec);
  MaskReducer reducer(t, spec);

  // GPU g sets bits g, g + p, g + 2p, ... -- all distinct.
  std::vector<util::AtomicBitset> masks(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    masks[static_cast<std::size_t>(g)].resize(param.bits);
    for (std::size_t i = static_cast<std::size_t>(g); i < param.bits;
         i += static_cast<std::size_t>(p)) {
      masks[static_cast<std::size_t>(g)].set_unsynchronized(i);
    }
  }
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      reducer.reduce(spec.coord_of(g), masks[static_cast<std::size_t>(g)],
                     /*iteration=*/0);
    });
  }
  for (auto& th : threads) th.join();

  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(masks[static_cast<std::size_t>(g)].count(), param.bits)
        << "gpu " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MaskReduceShapes,
    ::testing::Values(ReduceCase{1, 1, 64}, ReduceCase{1, 4, 100},
                      ReduceCase{2, 2, 257}, ReduceCase{4, 1, 1000},
                      ReduceCase{4, 2, 129}, ReduceCase{8, 2, 64},
                      ReduceCase{3, 3, 777}));

TEST(MaskReduce, RepeatedIterationsStaySeparated) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  Transport t(spec);
  MaskReducer reducer(t, spec);
  const int p = spec.total_gpus();

  for (int iteration = 0; iteration < 5; ++iteration) {
    std::vector<util::AtomicBitset> masks(static_cast<std::size_t>(p));
    std::vector<std::thread> threads;
    for (int g = 0; g < p; ++g) {
      masks[static_cast<std::size_t>(g)].resize(64);
      masks[static_cast<std::size_t>(g)].set_unsynchronized(
          static_cast<std::size_t>(g + iteration * p));
    }
    for (int g = 0; g < p; ++g) {
      threads.emplace_back([&, g, iteration] {
        reducer.reduce(spec.coord_of(g), masks[static_cast<std::size_t>(g)],
                       iteration);
      });
    }
    for (auto& th : threads) th.join();
    for (int g = 0; g < p; ++g) {
      EXPECT_EQ(masks[static_cast<std::size_t>(g)].count(),
                static_cast<std::size_t>(p))
          << "iteration " << iteration;
    }
  }
}

TEST(MaskReduce, NonBlockingModeSameResult) {
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  MaskReducer reducer(t, spec);

  std::vector<util::AtomicBitset> masks(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    masks[static_cast<std::size_t>(g)].resize(128);
    masks[static_cast<std::size_t>(g)].set_unsynchronized(
        static_cast<std::size_t>(g * 16));
  }
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      reducer.reduce(spec.coord_of(g), masks[static_cast<std::size_t>(g)], 0,
                     ReduceMode::kNonBlocking);
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(masks[static_cast<std::size_t>(g)].count(),
              static_cast<std::size_t>(p));
  }
}

TEST(MaskReduce, TrafficMatchesTwoPhaseModel) {
  // Local phase: (pgpu-1) pushes + (pgpu-1) broadcasts of d/8 bytes per
  // rank.  Global phase: binomial tree among prank leaders, 2*(prank-1)
  // messages of d/8 bytes.  Section V-A's cost accounting.
  sim::ClusterSpec spec;
  spec.num_ranks = 4;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  MaskReducer reducer(t, spec);

  const std::size_t bits = 64 * 100;  // 100 words = 800 bytes
  std::vector<util::AtomicBitset> masks(static_cast<std::size_t>(p));
  for (int g = 0; g < p; ++g) masks[static_cast<std::size_t>(g)].resize(bits);
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      reducer.reduce(spec.coord_of(g), masks[static_cast<std::size_t>(g)], 0);
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t mask_bytes = 800;
  const std::uint64_t local_expected =
      static_cast<std::uint64_t>(spec.num_ranks) *
      2 * (static_cast<std::uint64_t>(spec.gpus_per_rank) - 1) * mask_bytes;
  const std::uint64_t global_expected =
      2 * (static_cast<std::uint64_t>(spec.num_ranks) - 1) * mask_bytes;
  EXPECT_EQ(t.bytes_same_rank(), local_expected);
  EXPECT_EQ(t.bytes_cross_rank(), global_expected);
}

TEST(ValueReduce, MinAcrossTopologies) {
  for (const auto& [ranks, gpus] : {std::pair{1, 1}, {1, 4}, {4, 1}, {3, 2}}) {
    sim::ClusterSpec spec;
    spec.num_ranks = ranks;
    spec.gpus_per_rank = gpus;
    const int p = spec.total_gpus();
    Transport t(spec);
    ValueReducer reducer(t, spec);
    std::vector<std::vector<std::uint64_t>> values(
        static_cast<std::size_t>(p));
    std::vector<std::thread> threads;
    for (int g = 0; g < p; ++g) {
      values[static_cast<std::size_t>(g)] = {
          static_cast<std::uint64_t>(g + 10), ~0ULL,
          static_cast<std::uint64_t>(100 - g)};
      threads.emplace_back([&, g] {
        reducer.reduce(spec.coord_of(g), values[static_cast<std::size_t>(g)],
                       ValueReducer::Op::kMin, 0);
      });
    }
    for (auto& th : threads) th.join();
    for (int g = 0; g < p; ++g) {
      const auto& v = values[static_cast<std::size_t>(g)];
      EXPECT_EQ(v[0], 10u) << ranks << "x" << gpus;
      EXPECT_EQ(v[1], ~0ULL);
      EXPECT_EQ(v[2], static_cast<std::uint64_t>(100 - (p - 1)));
    }
  }
}

TEST(ValueReduce, SumCountsEveryContribution) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 3;
  const int p = spec.total_gpus();
  Transport t(spec);
  ValueReducer reducer(t, spec);
  std::vector<std::vector<std::uint64_t>> values(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    values[static_cast<std::size_t>(g)] = {1, static_cast<std::uint64_t>(g)};
    threads.emplace_back([&, g] {
      reducer.reduce(spec.coord_of(g), values[static_cast<std::size_t>(g)],
                     ValueReducer::Op::kSum, 0);
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t id_sum = p * (p - 1) / 2;
  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(values[static_cast<std::size_t>(g)][0],
              static_cast<std::uint64_t>(p));
    EXPECT_EQ(values[static_cast<std::size_t>(g)][1], id_sum);
  }
}

TEST(ValueReduce, SumDoubleAccumulates) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  ValueReducer reducer(t, spec);
  std::vector<std::uint64_t> results(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::uint64_t word =
          std::bit_cast<std::uint64_t>(0.25 * static_cast<double>(g + 1));
      reducer.reduce(spec.coord_of(g), std::span<std::uint64_t>(&word, 1),
                     ValueReducer::Op::kSumDouble, 0);
      results[static_cast<std::size_t>(g)] = word;
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(results[static_cast<std::size_t>(g)]),
                     0.25 * (1 + 2 + 3 + 4));
  }
}

TEST(ValueReduce, RepeatedIterations) {
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  ValueReducer reducer(t, spec);
  for (int iteration = 0; iteration < 4; ++iteration) {
    std::vector<std::uint64_t> results(static_cast<std::size_t>(p));
    std::vector<std::thread> threads;
    for (int g = 0; g < p; ++g) {
      threads.emplace_back([&, g, iteration] {
        std::uint64_t word = static_cast<std::uint64_t>(g + iteration);
        reducer.reduce(spec.coord_of(g), std::span<std::uint64_t>(&word, 1),
                       ValueReducer::Op::kMin, iteration);
        results[static_cast<std::size_t>(g)] = word;
      });
    }
    for (auto& th : threads) th.join();
    for (const auto r : results) {
      EXPECT_EQ(r, static_cast<std::uint64_t>(iteration));
    }
  }
}

TEST(ValueReduce, ChannelsKeepConcurrentReductionsDisjoint) {
  // Two reductions in the same iteration on different channels (the folded
  // TagBlocks::reduce_channel stride): payloads must not cross even when
  // every GPU runs both concurrently.
  sim::ClusterSpec spec;
  spec.num_ranks = 2;
  spec.gpus_per_rank = 2;
  const int p = spec.total_gpus();
  Transport t(spec);
  ValueReducer reducer(t, spec);
  std::vector<std::uint64_t> min_results(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> sum_results(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  for (int g = 0; g < p; ++g) {
    threads.emplace_back([&, g] {
      std::uint64_t min_word = 100 + static_cast<std::uint64_t>(g);
      std::uint64_t sum_word = 1;
      std::thread inner([&] {
        reducer.reduce(spec.coord_of(g),
                       std::span<std::uint64_t>(&min_word, 1),
                       ValueReducer::Op::kMin, /*iteration=*/0, /*channel=*/0);
      });
      reducer.reduce(spec.coord_of(g), std::span<std::uint64_t>(&sum_word, 1),
                     ValueReducer::Op::kSum, /*iteration=*/0, /*channel=*/1);
      inner.join();
      min_results[static_cast<std::size_t>(g)] = min_word;
      sum_results[static_cast<std::size_t>(g)] = sum_word;
    });
  }
  for (auto& th : threads) th.join();
  for (int g = 0; g < p; ++g) {
    EXPECT_EQ(min_results[static_cast<std::size_t>(g)], 100u);
    EXPECT_EQ(sum_results[static_cast<std::size_t>(g)],
              static_cast<std::uint64_t>(p));
  }
}

TEST(MaskReduce, SingleGpuIsNoop) {
  sim::ClusterSpec spec;
  spec.num_ranks = 1;
  spec.gpus_per_rank = 1;
  Transport t(spec);
  MaskReducer reducer(t, spec);
  util::AtomicBitset mask(64);
  mask.set_unsynchronized(5);
  reducer.reduce(sim::GpuCoord{0, 0}, mask, 0);
  EXPECT_TRUE(mask.test(5));
  EXPECT_EQ(mask.count(), 1u);
  EXPECT_EQ(t.messages_sent(), 0u);
}

}  // namespace
}  // namespace dsbfs::comm
