#include "core/bucket.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "util/hash.hpp"

namespace dsbfs::core {
namespace {

TEST(BucketState, BucketOfMapsDistancesToWidthDeltaRanges) {
  const BucketState b(4);
  EXPECT_EQ(b.bucket_of(0), 0u);
  EXPECT_EQ(b.bucket_of(3), 0u);
  EXPECT_EQ(b.bucket_of(4), 1u);
  EXPECT_EQ(b.bucket_of(41), 10u);
  EXPECT_EQ(b.bucket_of(kInfiniteDistance), kNoBucket);
  EXPECT_EQ(b.bucket_base(10), 40u);
}

TEST(BucketState, InfiniteDeltaDegeneratesToSingleBucket) {
  const BucketState b(kInfiniteDistance);
  EXPECT_EQ(b.bucket_of(0), 0u);
  EXPECT_EQ(b.bucket_of(1ULL << 60), 0u);
  EXPECT_EQ(b.bucket_of(kInfiniteDistance), kNoBucket);
}

TEST(BucketState, RejectsZeroDelta) {
  EXPECT_THROW(BucketState(0), std::invalid_argument);
}

TEST(BucketState, TakeReturnsSortedUniqueValidEntries) {
  BucketState b(10);
  std::vector<std::uint64_t> dist = {5, 7, 25, kInfiniteDistance};
  b.insert(1, dist[1]);
  b.insert(0, dist[0]);
  b.insert(1, dist[1]);  // duplicate insert of the same vertex
  b.insert(2, dist[2]);
  EXPECT_EQ(b.entry_count(), 4u);

  const auto got = b.take(0, dist);
  EXPECT_EQ(got, (std::vector<LocalId>{0, 1}));
  EXPECT_EQ(b.take(0, dist), std::vector<LocalId>{});  // bucket consumed
  EXPECT_EQ(b.take(2, dist), std::vector<LocalId>{2});
  EXPECT_EQ(b.entry_count(), 0u);
}

TEST(BucketState, StaleEntriesAreDroppedAgainstCurrentDistances) {
  BucketState b(10);
  std::vector<std::uint64_t> dist = {35, 0};
  b.insert(0, dist[0]);  // queued in bucket 3...
  dist[0] = 12;          // ...then improved into bucket 1 behind its back
  b.insert(0, dist[0]);
  EXPECT_EQ(b.min_bucket(dist), 1u);
  EXPECT_EQ(b.take(1, dist), std::vector<LocalId>{0});
  // The bucket-3 entry is now stale; min_bucket prunes it and reports empty.
  EXPECT_EQ(b.min_bucket(dist), kNoBucket);
  EXPECT_EQ(b.entry_count(), 0u);
}

TEST(BucketState, MinBucketFindsSmallestValidAndCountsInserts) {
  BucketState b(2);
  std::vector<std::uint64_t> dist = {9, 4, 2};
  b.insert(0, dist[0]);
  b.insert(2, dist[2]);
  EXPECT_EQ(b.min_bucket(dist), 1u);
  EXPECT_EQ(b.inserted_total(), 2u);
}

TEST(EdgePartition, SplitsEveryRowByWeightAgainstDelta) {
  const graph::EdgeList g = graph::rmat_graph500({.scale = 8, .seed = 5});
  const graph::HostCsr csr = graph::build_host_csr(g);
  const std::uint64_t delta = 7;
  const std::uint32_t max_weight = 15;
  const auto weight_of = [&](std::size_t r, std::uint64_t e) {
    return util::edge_weight(r, csr.col(e), max_weight);
  };
  const EdgePartition part = EdgePartition::build(csr, delta, weight_of);

  std::uint64_t light = 0, heavy = 0;
  for (std::size_t r = 0; r < csr.num_rows(); ++r) {
    std::vector<bool> seen(csr.row_length(r), false);
    for (const EdgeId e : part.light(r)) {
      EXPECT_LE(weight_of(r, e), delta);
      seen[e - csr.row_begin(r)] = true;
      ++light;
    }
    for (const EdgeId e : part.heavy(r)) {
      EXPECT_GT(weight_of(r, e), delta);
      seen[e - csr.row_begin(r)] = true;
      ++heavy;
    }
    // The two slices are a partition of the row: every edge exactly once.
    EXPECT_EQ(part.light(r).size() + part.heavy(r).size(), csr.row_length(r));
    for (const bool s : seen) EXPECT_TRUE(s);
  }
  EXPECT_EQ(light + heavy, csr.num_edges());
  EXPECT_EQ(part.light_edges(), light);
  EXPECT_EQ(part.heavy_edges(), heavy);
  EXPECT_GT(light, 0u);
  EXPECT_GT(heavy, 0u);
  EXPECT_GT(part.bytes(), 0u);
}

TEST(EdgePartition, InfiniteDeltaMakesEveryEdgeLight) {
  const graph::EdgeList g = graph::path_graph(16);
  const graph::HostCsr csr = graph::build_host_csr(g);
  const EdgePartition part = EdgePartition::build(
      csr, kInfiniteDistance, [&](std::size_t r, std::uint64_t e) {
        return util::edge_weight(r, csr.col(e), 15);
      });
  EXPECT_EQ(part.light_edges(), csr.num_edges());
  EXPECT_EQ(part.heavy_edges(), 0u);
}

}  // namespace
}  // namespace dsbfs::core
