#include "core/bfs.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_bfs.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace dsbfs::core {
namespace {

sim::ClusterSpec spec_of(int ranks, int gpus) {
  sim::ClusterSpec s;
  s.num_ranks = ranks;
  s.gpus_per_rank = gpus;
  return s;
}

/// Run the distributed BFS and compare with the serial reference.
void expect_matches_serial(const graph::EdgeList& g, sim::ClusterSpec spec,
                           std::uint32_t threshold, VertexId source,
                           BfsOptions options = {}) {
  sim::Cluster cluster(spec);
  const graph::DistributedGraph dg = build_distributed(g, spec, threshold);
  DistributedBfs bfs(dg, cluster, options);
  const BfsResult result = bfs.run(source);
  const auto expected = baseline::serial_bfs(graph::build_host_csr(g), source);
  ASSERT_EQ(result.distances.size(), expected.size());
  for (VertexId v = 0; v < expected.size(); ++v) {
    ASSERT_EQ(result.distances[v], expected[v])
        << "vertex " << v << " spec " << spec.to_string() << " th "
        << threshold << " src " << source;
  }
}

TEST(BfsSmall, SingleGpuPath) {
  expect_matches_serial(graph::path_graph(20), spec_of(1, 1), 4, 0);
}

TEST(BfsSmall, PathAcrossGpus) {
  // Path vertices scatter round-robin: every hop crosses GPUs via nn edges.
  expect_matches_serial(graph::path_graph(20), spec_of(2, 2), 4, 0);
  expect_matches_serial(graph::path_graph(20), spec_of(4, 1), 4, 7);
}

TEST(BfsSmall, StarWithDelegateCenter) {
  // Center has degree 63 > TH: becomes a delegate; every visit flows
  // through the delegate machinery.
  expect_matches_serial(graph::star_graph(64), spec_of(2, 2), 8, 0);
  // From a leaf: leaf -> delegate -> all leaves (nd then dn edges).
  expect_matches_serial(graph::star_graph(64), spec_of(2, 2), 8, 5);
}

TEST(BfsSmall, StarSourceIsDelegate) {
  expect_matches_serial(graph::star_graph(64), spec_of(3, 1), 4, 0);
}

TEST(BfsSmall, CycleNoDelegates) {
  // Max degree 2: all normal at TH >= 2; pure nn exchange test.
  expect_matches_serial(graph::cycle_graph(37), spec_of(2, 2), 4, 11);
}

TEST(BfsSmall, CycleAllDelegates) {
  // TH = 0: every vertex is a delegate; pure mask-reduction BFS.
  expect_matches_serial(graph::cycle_graph(24), spec_of(2, 2), 0, 3);
}

TEST(BfsSmall, GridMixedThresholds) {
  const graph::EdgeList g = graph::grid_graph(9, 7);
  for (const std::uint32_t th : {0u, 2u, 3u, 10u}) {
    expect_matches_serial(g, spec_of(2, 2), th, 0);
  }
}

TEST(BfsSmall, CompleteGraphEverythingDelegate) {
  expect_matches_serial(graph::complete_graph(24), spec_of(2, 2), 4, 13);
}

TEST(BfsSmall, BinaryTreeDeep) {
  expect_matches_serial(graph::binary_tree(255), spec_of(2, 2), 4, 0);
}

TEST(BfsSmall, DisconnectedComponentUnreached) {
  const graph::EdgeList g = graph::two_cliques(8);
  sim::Cluster cluster(spec_of(2, 2));
  const auto dg = build_distributed(g, spec_of(2, 2), 4);
  DistributedBfs bfs(dg, cluster);
  const BfsResult r = bfs.run(0);
  for (VertexId v = 0; v < 8; ++v) EXPECT_NE(r.distances[v], kUnvisited);
  for (VertexId v = 8; v < 16; ++v) EXPECT_EQ(r.distances[v], kUnvisited);
}

TEST(BfsSmall, IsolatedSourceTerminatesImmediately) {
  graph::EdgeList g;
  g.num_vertices = 10;
  g.add(1, 2);
  g.add(2, 1);
  sim::Cluster cluster(spec_of(2, 1));
  const auto dg = build_distributed(g, spec_of(2, 1), 4);
  DistributedBfs bfs(dg, cluster);
  const BfsResult r = bfs.run(0);  // vertex 0 has no edges
  EXPECT_EQ(r.distances[0], 0);
  EXPECT_EQ(r.distances[1], kUnvisited);
  EXPECT_LE(r.metrics.iterations, 1);
}

TEST(BfsSmall, SelfLoopsHarmless) {
  graph::EdgeList g;
  g.num_vertices = 6;
  g.add(0, 0);
  g.add(0, 1);
  g.add(1, 0);
  g.add(1, 2);
  g.add(2, 1);
  sim::Cluster cluster(spec_of(2, 1));
  const auto dg = build_distributed(g, spec_of(2, 1), 4);
  DistributedBfs bfs(dg, cluster);
  const BfsResult r = bfs.run(0);
  EXPECT_EQ(r.distances[0], 0);
  EXPECT_EQ(r.distances[1], 1);
  EXPECT_EQ(r.distances[2], 2);
}

TEST(BfsSmall, SourceOutOfRangeThrows) {
  const graph::EdgeList g = graph::path_graph(4);
  sim::Cluster cluster(spec_of(1, 1));
  const auto dg = build_distributed(g, spec_of(1, 1), 4);
  DistributedBfs bfs(dg, cluster);
  EXPECT_THROW(bfs.run(99), std::out_of_range);
}

TEST(BfsSmall, MismatchedClusterRejected) {
  const graph::EdgeList g = graph::path_graph(4);
  const auto dg = build_distributed(g, spec_of(2, 1), 4);
  sim::Cluster wrong(spec_of(1, 1));
  EXPECT_THROW(DistributedBfs(dg, wrong), std::invalid_argument);
}

TEST(BfsSmall, RepeatedRunsIndependent) {
  const graph::EdgeList g = graph::grid_graph(6, 6);
  const auto spec = spec_of(2, 2);
  sim::Cluster cluster(spec);
  const auto dg = build_distributed(g, spec, 3);
  DistributedBfs bfs(dg, cluster);
  const BfsResult a = bfs.run(0);
  const BfsResult b = bfs.run(35);
  const BfsResult a2 = bfs.run(0);
  EXPECT_EQ(a.distances, a2.distances);
  EXPECT_NE(a.distances, b.distances);
}

TEST(BfsSmall, SingleVertexGraph) {
  graph::EdgeList g;
  g.num_vertices = 1;
  sim::Cluster cluster(spec_of(1, 1));
  const auto dg = build_distributed(g, spec_of(1, 1), 4);
  DistributedBfs bfs(dg, cluster);
  const BfsResult r = bfs.run(0);
  EXPECT_EQ(r.distances[0], 0);
}

TEST(BfsSmall, MoreGpusThanVertices) {
  // 3 vertices on 8 GPUs: most GPUs own nothing and must still participate
  // in every collective.
  const graph::EdgeList g = graph::path_graph(3);
  expect_matches_serial(g, spec_of(4, 2), 4, 0);
  expect_matches_serial(g, spec_of(8, 1), 4, 2);
}

TEST(BfsSmall, TwoVertexEdge) {
  graph::EdgeList g;
  g.num_vertices = 2;
  g.add(0, 1);
  g.add(1, 0);
  expect_matches_serial(g, spec_of(2, 1), 1, 0);
  expect_matches_serial(g, spec_of(2, 1), 0, 1);  // both delegates
}

TEST(BfsSmall, SampleSourceAlwaysHasEdges) {
  graph::EdgeList g;
  g.num_vertices = 100;
  g.add(7, 8);
  g.add(8, 7);
  const auto dg = build_distributed(g, spec_of(1, 1), 4);
  sim::Cluster cluster(spec_of(1, 1));
  DistributedBfs bfs(dg, cluster);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const VertexId s = bfs.sample_source(k);
    EXPECT_TRUE(s == 7 || s == 8);
  }
}

}  // namespace
}  // namespace dsbfs::core
